package storage

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/erasure"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/storage/chunker"
)

// Client is a storage consumer: it uploads objects with a chosen redundancy
// scheme, downloads with failover, audits holders with proof-of-storage
// challenges, and repairs lost redundancy.
type Client struct {
	rpc     *simnet.RPCNode
	res     *resil.Client // transfer RPCs (puts, fetches) ride the resilience layer
	timeout time.Duration
	// pinRepairs makes Repair pin its restore sources at the holders for
	// the duration of the repair (see EnableRepairPinning). Off by
	// default: the pin/unpin round trips would change the historical
	// repair traffic, and GC only exists in tiered worlds.
	pinRepairs bool

	// Observability: network-wide repair volume (chunk copies restored and
	// their payload bytes); repair latency is spanned per Repair call as
	// storage.repair.duration_s.
	obsRepairChunks *obs.Counter
	obsRepairBytes  *obs.Counter
}

// NewClient creates a storage client on node with the historical
// fixed-timeout transport (no retries). timeout bounds individual transfer
// RPCs (auditing uses its own deadline).
func NewClient(node *simnet.Node, timeout time.Duration) *Client {
	return NewClientWith(node, timeout, resil.Config{})
}

// NewClientWith is NewClient with an explicit resilience configuration
// for the transfer path. Audits stay on the raw transport either way: the
// challenge deadline is itself the proof-of-storage timing test, and
// retrying or hedging it would hand outsourcing providers free extra time.
func NewClientWith(node *simnet.Node, timeout time.Duration, rcfg resil.Config) *Client {
	rpc := simnet.NewRPCNode(node)
	return &Client{
		rpc:             rpc,
		res:             resil.New(rpc, rcfg),
		timeout:         timeout,
		obsRepairChunks: node.Obs().Counter("storage.repair.chunks"),
		obsRepairBytes:  node.Obs().Counter("storage.repair.bytes"),
	}
}

// Node returns the client's simnet node.
func (c *Client) Node() *simnet.Node { return c.rpc.Node() }

// EnableRepairPinning makes every Repair pin the chunks it reads as
// restore sources at their holders, and unpin them once the lost
// redundancy is re-placed. On providers running capacity-triggered GC
// this closes the window where a repair's source chunk — possibly the
// last surviving copy — could be evicted between the audit that found it
// and the fetch that reads it.
func (c *Client) EnableRepairPinning() { c.pinRepairs = true }

// RepairBytes returns the cumulative payload bytes this client's repairs
// have restored (the storage.repair.bytes counter), for experiments that
// charge repair volume to a phase by differencing.
func (c *Client) RepairBytes() int64 { return c.obsRepairBytes.Value() }

// Upload stores data with replication: every chunk goes to `replicas`
// distinct providers drawn from the given pool. done receives the manifest
// and placement, or an error if any chunk could not reach the target
// redundancy.
func (c *Client) Upload(data []byte, chunkSize int, providers []ProviderRef, replicas int, done func(*Manifest, *Placement, error)) {
	if replicas <= 0 || len(providers) < replicas {
		done(nil, nil, fmt.Errorf("storage: need ≥%d providers for %d replicas, have %d", replicas, replicas, len(providers)))
		return
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	chunks := SplitChunks(data, chunkSize)
	m := &Manifest{
		FileID:    cryptoutil.SumHash(data),
		Size:      len(data),
		ChunkSize: chunkSize,
		Mode:      ModeReplicate,
		Replicas:  replicas,
	}
	for _, ch := range chunks {
		m.Chunks = append(m.Chunks, ch.ID)
		m.ChunkRoots = append(m.ChunkRoots, chunkProofRoot(ch.Data))
	}
	c.placeChunks(chunks, providers, replicas, func(pl *Placement, err error) {
		done(m, pl, err)
	})
}

// UploadCDC stores data with replication like Upload, but cuts it with
// the given content-defined chunker instead of at fixed offsets. The
// manifest records the variable-length chunk table (ChunkLens) alongside
// the content addresses and per-chunk proof roots, so downloads, audits
// and repairs work unchanged. Two uploaders splitting overlapping data
// with the same chunker configuration produce identical chunks for the
// shared content — that is what lets providers deduplicate them.
func (c *Client) UploadCDC(data []byte, ck *chunker.Chunker, providers []ProviderRef, replicas int, done func(*Manifest, *Placement, error)) {
	if ck == nil {
		done(nil, nil, errors.New("storage: UploadCDC needs a chunker"))
		return
	}
	if replicas <= 0 || len(providers) < replicas {
		done(nil, nil, fmt.Errorf("storage: need ≥%d providers for %d replicas, have %d", replicas, replicas, len(providers)))
		return
	}
	m := &Manifest{
		FileID:   cryptoutil.SumHash(data),
		Size:     len(data),
		Mode:     ModeReplicate,
		Replicas: replicas,
	}
	var chunks []Chunk
	ck.Split(data, func(part []byte) {
		ch := NewChunk(part)
		chunks = append(chunks, ch)
		m.Chunks = append(m.Chunks, ch.ID)
		m.ChunkLens = append(m.ChunkLens, len(part))
		m.ChunkRoots = append(m.ChunkRoots, chunkProofRoot(part))
	})
	c.placeChunks(chunks, providers, replicas, func(pl *Placement, err error) {
		done(m, pl, err)
	})
}

// UploadErasure stores data as a (k, k+m) Reed–Solomon shard set, one shard
// per provider.
func (c *Client) UploadErasure(data []byte, k, parity int, providers []ProviderRef, done func(*Manifest, *Placement, error)) {
	code, err := erasure.New(k, parity)
	if err != nil {
		done(nil, nil, err)
		return
	}
	if len(providers) < k+parity {
		done(nil, nil, fmt.Errorf("storage: erasure (%d,%d) needs %d providers, have %d", k, k+parity, k+parity, len(providers)))
		return
	}
	shards, err := code.Encode(code.Split(data))
	if err != nil {
		done(nil, nil, err)
		return
	}
	m := &Manifest{
		FileID:       cryptoutil.SumHash(data),
		Size:         len(data),
		Mode:         ModeErasure,
		DataShards:   k,
		ParityShards: parity,
		Replicas:     1,
	}
	var chunks []Chunk
	for _, s := range shards {
		ch := NewChunk(s)
		chunks = append(chunks, ch)
		m.Chunks = append(m.Chunks, ch.ID)
		m.ChunkRoots = append(m.ChunkRoots, chunkProofRoot(s))
	}
	c.placeChunks(chunks, providers, 1, func(pl *Placement, err error) {
		done(m, pl, err)
	})
}

// placeChunks distributes each chunk to `replicas` distinct providers,
// spreading chunks across the pool round-robin from a random offset.
func (c *Client) placeChunks(chunks []Chunk, providers []ProviderRef, replicas int, done func(*Placement, error)) {
	pl := NewPlacement()
	pending := 0
	failed := 0
	finished := false
	rng := c.rpc.Node().Rand()
	offset := rng.Intn(len(providers))
	check := func() {
		if pending == 0 && !finished {
			finished = true
			if failed > 0 {
				done(pl, fmt.Errorf("storage: %d chunk placements failed", failed))
				return
			}
			done(pl, nil)
		}
	}
	// A put travels lossy links; transport-level retries are the
	// resilience layer's job (NewClientWith), which also knows that a
	// refusal is the provider's deterministic answer and final.
	put := func(ch Chunk, target ProviderRef) {
		c.res.Call(target.Node, methodPut, putReq{Chunk: ch}, len(ch.Data)+48, c.timeout, func(resp any, err error) {
			pending--
			ok, _ := resp.(bool)
			if err != nil || !ok {
				failed++
			} else {
				pl.Add(ch.ID, target)
			}
			check()
		})
	}
	for ci, ch := range chunks {
		for r := 0; r < replicas; r++ {
			target := providers[(offset+ci*replicas+r)%len(providers)]
			pending++
			put(ch, target)
		}
	}
	if pending == 0 {
		check()
	}
}

// Download retrieves and reassembles an object, verifying every chunk
// against its content address and failing over across holders. In erasure
// mode any k healthy shards suffice.
func (c *Client) Download(m *Manifest, pl *Placement, done func(data []byte, err error)) {
	n := len(m.Chunks)
	results := make([][]byte, n)
	remaining := n
	finished := false
	finish := func() {
		if finished {
			return
		}
		finished = true
		switch m.Mode {
		case ModeReplicate:
			var out []byte
			for i, d := range results {
				if d == nil {
					done(nil, fmt.Errorf("storage: chunk %d unrecoverable", i))
					return
				}
				out = append(out, d...)
			}
			if cryptoutil.SumHash(out) != m.FileID {
				done(nil, errors.New("storage: reassembled file hash mismatch"))
				return
			}
			done(out, nil)
		case ModeErasure:
			code, err := erasure.New(m.DataShards, m.ParityShards)
			if err != nil {
				done(nil, err)
				return
			}
			have := 0
			for _, d := range results {
				if d != nil {
					have++
				}
			}
			if have < m.DataShards {
				done(nil, fmt.Errorf("storage: only %d/%d shards available, need %d", have, len(results), m.DataShards))
				return
			}
			if err := code.Reconstruct(results); err != nil {
				done(nil, err)
				return
			}
			out, err := code.Join(results, m.Size)
			if err != nil {
				done(nil, err)
				return
			}
			if cryptoutil.SumHash(out) != m.FileID {
				done(nil, errors.New("storage: reconstructed file hash mismatch"))
				return
			}
			done(out, nil)
		}
	}
	for i := range m.Chunks {
		i := i
		c.fetchChunk(m.Chunks[i], pl.Holders[m.Chunks[i]], 0, func(data []byte, ok bool) {
			if ok {
				results[i] = data
			}
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
	if n == 0 {
		finish()
	}
}

// fetchChunk tries holders in order until one returns data matching the
// content address.
func (c *Client) fetchChunk(id cryptoutil.Hash, holders []ProviderRef, i int, done func([]byte, bool)) {
	if i >= len(holders) {
		done(nil, false)
		return
	}
	c.res.Call(holders[i].Node, methodGet, id, 40, c.timeout, func(resp any, err error) {
		if err == nil {
			if gr, ok := resp.(getResp); ok && gr.OK && cryptoutil.SumHash(gr.Data) == id {
				done(gr.Data, true)
				return
			}
		}
		c.fetchChunk(id, holders, i+1, done)
	})
}

// AuditResult is the outcome of one proof-of-storage challenge.
type AuditResult struct {
	ChunkIndex int
	Holder     ProviderRef
	OK         bool
	Err        string
}

// AuditReport aggregates an audit pass over a manifest.
type AuditReport struct {
	Results []AuditResult
}

// Passed returns how many challenges succeeded.
func (r *AuditReport) Passed() int {
	n := 0
	for _, res := range r.Results {
		if res.OK {
			n++
		}
	}
	return n
}

// Failed returns how many challenges failed.
func (r *AuditReport) Failed() int { return len(r.Results) - r.Passed() }

// FailedHolders returns the distinct providers that failed at least one
// challenge.
func (r *AuditReport) FailedHolders() []ProviderRef {
	seen := map[simnet.NodeID]bool{}
	var out []ProviderRef
	for _, res := range r.Results {
		if !res.OK && !seen[res.Holder.Node] {
			seen[res.Holder.Node] = true
			out = append(out, res.Holder)
		}
	}
	return out
}

// Audit issues one random-leaf proof-of-storage challenge to every holder
// of every chunk. deadline bounds each challenge round trip; a correct
// answer arriving after the deadline counts as failure (catching
// outsourcing attacks by timing).
func (c *Client) Audit(m *Manifest, pl *Placement, deadline time.Duration, done func(*AuditReport)) {
	report := &AuditReport{}
	pending := 0
	finished := false
	check := func() {
		if pending == 0 && !finished {
			finished = true
			done(report)
		}
	}
	rng := c.rpc.Node().Rand()
	for ci, id := range m.Chunks {
		root := m.ChunkRoots[ci]
		// Chunk sizes vary; challenge a random leaf within the smallest
		// plausible bound. Providers reject out-of-range leaves, so derive
		// the leaf bound from manifest size per chunk.
		leafCount := numProofLeaves(chunkDataLen(m, ci))
		for _, holder := range pl.Holders[id] {
			pending++
			ci, holder := ci, holder
			leaf := rng.Intn(leafCount)
			req := challengeReq{ChunkID: id, Leaf: leaf}
			c.rpc.Call(holder.Node, methodChallenge, req, 48, deadline, func(resp any, err error) {
				pending--
				res := AuditResult{ChunkIndex: ci, Holder: holder}
				if err != nil {
					res.Err = err.Error()
				} else if cr, ok := resp.(challengeResp); !ok || !cr.OK {
					res.Err = "challenge refused"
				} else if !cryptoutil.VerifyProof(root, cr.LeafData, cr.Proof) {
					res.Err = "merkle proof invalid"
				} else {
					res.OK = true
				}
				report.Results = append(report.Results, res)
				check()
			})
		}
	}
	if pending == 0 {
		check()
	}
}

// chunkDataLen returns the byte length of chunk ci per the manifest.
func chunkDataLen(m *Manifest, ci int) int {
	if ci < len(m.ChunkLens) {
		return m.ChunkLens[ci] // content-defined: explicit chunk table
	}
	switch m.Mode {
	case ModeErasure:
		if m.DataShards == 0 {
			return 0
		}
		shardLen := (m.Size + m.DataShards - 1) / m.DataShards
		if shardLen == 0 {
			shardLen = 1
		}
		return shardLen
	default:
		n := len(m.Chunks)
		if n == 0 || m.ChunkSize <= 0 {
			return 0
		}
		if ci == n-1 {
			last := m.Size - m.ChunkSize*(n-1)
			if last >= 0 {
				return last
			}
		}
		return m.ChunkSize
	}
}

// forEachChunkHolder runs op once per (chunk, holder) pair of the
// manifest's current placement, then calls done with how many ops were
// acknowledged. The chunk/holder RPC fan-out shared by the object
// lifecycle helpers below.
func (c *Client) forEachChunkHolder(m *Manifest, pl *Placement, method string, done func(acked int)) {
	pending := 0
	acked := 0
	finished := false
	check := func() {
		if pending == 0 && !finished {
			finished = true
			if done != nil {
				done(acked)
			}
		}
	}
	for _, id := range m.Chunks {
		for _, h := range pl.Holders[id] {
			pending++
			id, h := id, h
			c.res.Call(h.Node, method, id, 40, c.timeout, func(resp any, err error) {
				pending--
				if ok, _ := resp.(bool); err == nil && ok {
					acked++
				}
				check()
			})
		}
	}
	if pending == 0 {
		check()
	}
}

// PinObject pins every chunk of the object at every holder — the wiring
// a live storage contract uses so capacity-triggered GC on the provider
// can never evict contracted data.
func (c *Client) PinObject(m *Manifest, pl *Placement, done func(acked int)) {
	c.forEachChunkHolder(m, pl, methodPin, done)
}

// UnpinObject drops the contract pins (contract expiry or termination).
func (c *Client) UnpinObject(m *Manifest, pl *Placement, done func(acked int)) {
	c.forEachChunkHolder(m, pl, methodUnpin, done)
}

// ReleaseObject tells every holder the object is deleted: each chunk
// loses one reference. Providers keep the bytes until GC wants the
// space — dedup means another object may still reference the same chunk,
// and the refcount tracks exactly that.
func (c *Client) ReleaseObject(m *Manifest, pl *Placement, done func(acked int)) {
	c.forEachChunkHolder(m, pl, methodRelease, done)
}

// pinHolders pins chunk id at each holder and calls done once every pin
// RPC resolves. A no-op (immediate done) unless repair pinning is on.
func (c *Client) pinHolders(id cryptoutil.Hash, holders []ProviderRef, done func()) {
	if !c.pinRepairs || len(holders) == 0 {
		done()
		return
	}
	pending := len(holders)
	for _, h := range holders {
		c.res.Call(h.Node, methodPin, id, 40, c.timeout, func(any, error) {
			pending--
			if pending == 0 {
				done()
			}
		})
	}
}

// unpinHolders releases repair pins, fire-and-forget.
func (c *Client) unpinHolders(id cryptoutil.Hash, holders []ProviderRef) {
	if !c.pinRepairs {
		return
	}
	for _, h := range holders {
		c.res.Call(h.Node, methodUnpin, id, 40, c.timeout, func(any, error) {})
	}
}

// Repair restores target redundancy after provider failures. In replicate
// mode it copies surviving replicas onto fresh providers from the pool; in
// erasure mode it reconstructs lost shards from any k survivors and
// re-places them. done receives how many chunk copies were restored.
func (c *Client) Repair(m *Manifest, pl *Placement, pool []ProviderRef, done func(restored int, err error)) {
	node := c.rpc.Node()
	span := node.Obs().StartSpan("storage.repair.duration_s", node.Now())
	inner := done
	done = func(restored int, err error) {
		span.End(node.Now())
		inner(restored, err)
	}
	switch m.Mode {
	case ModeReplicate:
		c.repairReplicate(m, pl, pool, done)
	case ModeErasure:
		c.repairErasure(m, pl, pool, done)
	default:
		done(0, errors.New("storage: unknown placement mode"))
	}
}

func (c *Client) repairReplicate(m *Manifest, pl *Placement, pool []ProviderRef, done func(int, error)) {
	type job struct {
		id      cryptoutil.Hash
		missing int
	}
	var jobs []job
	for _, id := range m.Chunks {
		if n := pl.Count(id); n < m.Replicas {
			jobs = append(jobs, job{id: id, missing: m.Replicas - n})
		}
	}
	if len(jobs) == 0 {
		done(0, nil)
		return
	}
	restored := 0
	pending := len(jobs)
	var anyErr error
	for _, j := range jobs {
		j := j
		// Pin the restore sources first (when enabled): between here and
		// the fetch, a GC on the holder must not evict what may be the
		// last surviving copy.
		src := append([]ProviderRef(nil), pl.Holders[j.id]...)
		c.pinHolders(j.id, src, func() {
			c.fetchChunk(j.id, pl.Holders[j.id], 0, func(data []byte, ok bool) {
				if !ok {
					c.unpinHolders(j.id, src)
					anyErr = fmt.Errorf("storage: chunk %s has no surviving replica", j.id.Short())
					pending--
					if pending == 0 {
						done(restored, anyErr)
					}
					return
				}
				c.placeOnFresh(NewChunk(data), pl, pool, nil, j.missing, func(placed int) {
					c.unpinHolders(j.id, src)
					restored += placed
					c.obsRepairChunks.Add(int64(placed))
					c.obsRepairBytes.Add(int64(placed * len(data)))
					if placed < j.missing && anyErr == nil {
						anyErr = fmt.Errorf("storage: chunk %s restored %d/%d copies", j.id.Short(), placed, j.missing)
					}
					pending--
					if pending == 0 {
						done(restored, anyErr)
					}
				})
			})
		})
	}
}

func (c *Client) repairErasure(m *Manifest, pl *Placement, pool []ProviderRef, done func(int, error)) {
	// Which shards are lost?
	lost := 0
	for _, id := range m.Chunks {
		if pl.Count(id) == 0 {
			lost++
		}
	}
	if lost == 0 {
		done(0, nil)
		return
	}
	// Fetch all available shards, reconstruct, re-place the missing ones.
	// Surviving shard holders are pinned for the whole reconstruct (when
	// enabled): losing one more shard mid-repair could drop the set below
	// k and turn a repairable object into a dead one.
	type pinned struct {
		id      cryptoutil.Hash
		holders []ProviderRef
	}
	var pins []pinned
	for _, id := range m.Chunks {
		if hs := pl.Holders[id]; len(hs) > 0 {
			pins = append(pins, pinned{id: id, holders: append([]ProviderRef(nil), hs...)})
		}
	}
	unpinAll := func() {
		for _, p := range pins {
			c.unpinHolders(p.id, p.holders)
		}
	}
	inner := done
	done = func(restored int, err error) {
		unpinAll()
		inner(restored, err)
	}
	pinsLeft := len(pins)
	n := len(m.Chunks)
	shards := make([][]byte, n)
	fetchAll := func() {
		remaining := n
		for i := range m.Chunks {
			i := i
			c.fetchChunk(m.Chunks[i], pl.Holders[m.Chunks[i]], 0, func(data []byte, ok bool) {
				if ok {
					shards[i] = data
				}
				remaining--
				if remaining > 0 {
					return
				}
				code, err := erasure.New(m.DataShards, m.ParityShards)
				if err != nil {
					done(0, err)
					return
				}
				if err := code.Reconstruct(shards); err != nil {
					done(0, err)
					return
				}
				restored := 0
				pending := 0
				finished := false
				check := func() {
					if pending == 0 && !finished {
						finished = true
						var err error
						if restored < lost {
							err = fmt.Errorf("storage: restored %d/%d lost shards", restored, lost)
						}
						done(restored, err)
					}
				}
				// Shards of one object must sit on distinct providers:
				// co-locating them would let one death erase several shards.
				occupied := map[simnet.NodeID]bool{}
				for _, id := range m.Chunks {
					for _, h := range pl.Holders[id] {
						occupied[h.Node] = true
					}
				}
				for si, id := range m.Chunks {
					if pl.Count(id) > 0 {
						continue
					}
					pending++
					ch := NewChunk(shards[si])
					c.placeOnFresh(ch, pl, pool, occupied, 1, func(placed int) {
						restored += placed
						c.obsRepairChunks.Add(int64(placed))
						c.obsRepairBytes.Add(int64(placed * len(ch.Data)))
						for _, h := range pl.Holders[ch.ID] {
							occupied[h.Node] = true
						}
						pending--
						check()
					})
				}
				check()
			})
		}
	}
	// Kick off: pin every surviving shard holder, then fetch.
	if !c.pinRepairs || len(pins) == 0 {
		fetchAll()
		return
	}
	for _, p := range pins {
		p := p
		c.pinHolders(p.id, p.holders, func() {
			pinsLeft--
			if pinsLeft == 0 {
				fetchAll()
			}
		})
	}
}

// placeOnFresh puts a chunk on up to want providers that do not already
// hold it (nor appear in exclude), trying pool members in a random order so
// repeated repairs spread load instead of piling every restored chunk onto
// the first live pool member.
func (c *Client) placeOnFresh(ch Chunk, pl *Placement, pool []ProviderRef, exclude map[simnet.NodeID]bool, want int, done func(placed int)) {
	holders := map[simnet.NodeID]bool{}
	for _, h := range pl.Holders[ch.ID] {
		holders[h.Node] = true
	}
	var candidates []ProviderRef
	for _, p := range pool {
		if !holders[p.Node] && !exclude[p.Node] {
			candidates = append(candidates, p)
		}
	}
	rng := c.rpc.Node().Rand()
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	placed := 0
	var try func(i int)
	try = func(i int) {
		if placed >= want || i >= len(candidates) {
			done(placed)
			return
		}
		target := candidates[i]
		c.res.Call(target.Node, methodPut, putReq{Chunk: ch}, len(ch.Data)+48, c.timeout, func(resp any, err error) {
			if ok, _ := resp.(bool); err == nil && ok {
				pl.Add(ch.ID, target)
				placed++
			}
			try(i + 1)
		})
	}
	try(0)
}
