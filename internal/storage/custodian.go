package storage

import (
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// Custodian automates the owner side of the storage economy: on a fixed
// epoch it audits every managed object, drops holders that fail their
// proof, repairs redundancy from the provider pool, and (when a contract
// and wallet are attached) emits per-epoch payments for providers that
// proved possession. It packages the maintenance loop the §3.3 systems
// run implicitly — "repair strategies to prevent data loss" plus
// pay-per-proof settlement — as a reusable component.
type Custodian struct {
	client *Client
	pool   []ProviderRef
	epoch  time.Duration
	// deadline bounds each audit challenge (timing-based attack detection).
	deadline time.Duration
	objects  []*managedObject
	// wallet/submit wire settlement to a chain when non-nil.
	wallet *chain.Wallet
	submit func(*chain.Tx)
	// Stats.
	Epochs, Repairs, PaymentsSent, AuditFailures int
	running                                      bool

	// Observability: audit epochs run and challenges failed, network-wide.
	obsEpochs   *obs.Counter
	obsFailures *obs.Counter
}

type managedObject struct {
	m  *Manifest
	pl *Placement
	// contracts maps provider node → contract for payment routing.
	contracts map[ProviderRef]*Contract
}

// NewCustodian creates a maintenance daemon using the given client. epoch
// is the audit/repair period; deadline bounds individual challenges.
func NewCustodian(client *Client, pool []ProviderRef, epoch, deadline time.Duration) *Custodian {
	node := client.Node()
	return &Custodian{
		client: client, pool: pool, epoch: epoch, deadline: deadline,
		obsEpochs:   node.Obs().Counter("storage.audit.epochs"),
		obsFailures: node.Obs().Counter("storage.audit.failures"),
	}
}

// AttachWallet enables on-chain settlement: payments are built from wallet
// and handed to submit (typically Miner.SubmitTx).
func (cu *Custodian) AttachWallet(w *chain.Wallet, submit func(*chain.Tx)) {
	cu.wallet = w
	cu.submit = submit
}

// Manage adds an object to the maintenance set. contracts may be nil (no
// payments) or map specific holders to their contracts.
func (cu *Custodian) Manage(m *Manifest, pl *Placement, contracts map[ProviderRef]*Contract) {
	cu.objects = append(cu.objects, &managedObject{m: m, pl: pl, contracts: contracts})
}

// NumObjects returns how many objects are under management.
func (cu *Custodian) NumObjects() int { return len(cu.objects) }

// Start begins the epoch loop; it reschedules itself until Stop.
func (cu *Custodian) Start() {
	if cu.running {
		return
	}
	cu.running = true
	cu.scheduleEpoch()
}

// Stop halts the loop after the current epoch.
func (cu *Custodian) Stop() { cu.running = false }

func (cu *Custodian) scheduleEpoch() {
	// Node-local timer: audit epochs drift with the custodian's clock skew.
	cu.client.Node().After(cu.epoch, func() {
		if !cu.running {
			return
		}
		cu.runEpoch()
		cu.scheduleEpoch()
	})
}

// runEpoch audits, repairs, and settles every managed object once.
func (cu *Custodian) runEpoch() {
	cu.Epochs++
	cu.obsEpochs.Inc()
	for _, o := range cu.objects {
		o := o
		cu.client.Audit(o.m, o.pl, cu.deadline, func(r *AuditReport) {
			// Track which providers failed any challenge this epoch.
			failed := map[ProviderRef]bool{}
			for _, res := range r.Results {
				if !res.OK {
					failed[res.Holder] = true
					o.pl.Remove(o.m.Chunks[res.ChunkIndex], res.Holder)
					cu.AuditFailures++
					cu.obsFailures.Inc()
				}
			}
			// Pay every contracted holder that proved possession.
			if cu.wallet != nil && cu.submit != nil {
				for ref, ct := range o.contracts {
					if failed[ref] {
						continue
					}
					tx := ct.PaymentTx(cu.wallet.Key(), cu.wallet.NextNonce())
					cu.submit(tx)
					cu.PaymentsSent++
				}
			}
			// Restore redundancy.
			cu.client.Repair(o.m, o.pl, cu.pool, func(restored int, err error) {
				cu.Repairs += restored
			})
		})
	}
}

// Healthy reports whether every managed object currently meets its target
// redundancy according to the placement records.
func (cu *Custodian) Healthy() bool {
	for _, o := range cu.objects {
		want := o.m.Replicas
		if o.m.Mode == ModeErasure {
			want = 1
		}
		if o.pl.MinRedundancy(o.m) < want {
			return false
		}
	}
	return true
}

// Object returns the manifest and placement of managed object i (for
// downloads by the owner).
func (cu *Custodian) Object(i int) (*Manifest, *Placement) {
	o := cu.objects[i]
	return o.m, o.pl
}

// ManagedIDs lists the file IDs under management.
func (cu *Custodian) ManagedIDs() []cryptoutil.Hash {
	out := make([]cryptoutil.Hash, len(cu.objects))
	for i, o := range cu.objects {
		out[i] = o.m.FileID
	}
	return out
}
