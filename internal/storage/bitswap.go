package storage

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Bitswap is the IPFS incentive mechanism (Table 2: "Bitswap Ledgers"):
// instead of blockchain payments, every pair of peers keeps a byte-count
// ledger, and a peer stops serving a partner whose debt ratio (bytes taken
// vs bytes given) grows too large. Reciprocity without money — and
// therefore, as the paper's table implies, no incentive for strangers to
// store your data long-term; it only polices active exchange.

// BitswapConfig tunes the reciprocity policy.
type BitswapConfig struct {
	// DebtRatioLimit is the maximum (sent+grace)/(received+grace) ratio a
	// partner may reach before being refused. Values ≤ 0 select 3.
	DebtRatioLimit float64
	// GraceBytes lets new partners bootstrap before the ratio binds.
	// Values ≤ 0 select 64 KiB.
	GraceBytes int64
}

func (c BitswapConfig) withDefaults() BitswapConfig {
	if c.DebtRatioLimit <= 0 {
		c.DebtRatioLimit = 3
	}
	if c.GraceBytes <= 0 {
		c.GraceBytes = 64 << 10
	}
	return c
}

// bitswap wire methods.
const methodBitswapWant = "bitswap.want"

type bitswapWantResp struct {
	Data    []byte
	OK      bool
	Refused bool // reciprocity refusal, distinct from not-found
}

// BitswapNode is one content-exchanging peer with pairwise ledgers.
type BitswapNode struct {
	rpc    *simnet.RPCNode
	cfg    BitswapConfig
	blocks map[cryptoutil.Hash][]byte
	// sentTo / receivedFrom account bytes exchanged with each partner.
	sentTo       map[simnet.NodeID]int64
	receivedFrom map[simnet.NodeID]int64
	// Refusals counts requests denied for bad reciprocity.
	Refusals int
}

// NewBitswapNode creates a bitswap peer on node.
func NewBitswapNode(node *simnet.Node, cfg BitswapConfig) *BitswapNode {
	b := &BitswapNode{
		rpc:          simnet.NewRPCNode(node),
		cfg:          cfg.withDefaults(),
		blocks:       map[cryptoutil.Hash][]byte{},
		sentTo:       map[simnet.NodeID]int64{},
		receivedFrom: map[simnet.NodeID]int64{},
	}
	b.rpc.Serve(methodBitswapWant, b.onWant)
	return b
}

// Node returns the underlying simnet node.
func (b *BitswapNode) Node() *simnet.Node { return b.rpc.Node() }

// Put adds a block to the local store.
func (b *BitswapNode) Put(data []byte) cryptoutil.Hash {
	id := cryptoutil.SumHash(data)
	b.blocks[id] = append([]byte{}, data...)
	return id
}

// Has reports whether the node holds the block.
func (b *BitswapNode) Has(id cryptoutil.Hash) bool { _, ok := b.blocks[id]; return ok }

// DebtRatio returns how indebted a partner is: bytes we sent them over
// bytes they sent us, after the bootstrap grace.
func (b *BitswapNode) DebtRatio(peer simnet.NodeID) float64 {
	sent := float64(b.sentTo[peer])
	recv := float64(b.receivedFrom[peer] + b.cfg.GraceBytes)
	return sent / recv
}

func (b *BitswapNode) onWant(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return bitswapWantResp{}, 8
	}
	data, have := b.blocks[id]
	if !have {
		return bitswapWantResp{}, 8
	}
	if b.DebtRatio(from) > b.cfg.DebtRatioLimit {
		b.Refusals++
		return bitswapWantResp{Refused: true}, 8
	}
	b.sentTo[from] += int64(len(data))
	return bitswapWantResp{Data: data, OK: true}, 16 + len(data)
}

// Want requests a block from a partner; on success the block is stored
// locally and the partner credit updated. done reports (ok, refused).
func (b *BitswapNode) Want(peer simnet.NodeID, id cryptoutil.Hash, timeout time.Duration, done func(ok, refused bool)) {
	b.rpc.Call(peer, methodBitswapWant, id, 40, timeout, func(resp any, err error) {
		if err != nil {
			done(false, false)
			return
		}
		r, k := resp.(bitswapWantResp)
		if !k || !r.OK {
			done(false, k && r.Refused)
			return
		}
		if cryptoutil.SumHash(r.Data) != id {
			done(false, false)
			return
		}
		b.blocks[id] = r.Data
		b.receivedFrom[peer] += int64(len(r.Data))
		done(true, false)
	})
}
