package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func TestCustodianRepairsAfterProviderDeath(t *testing.T) {
	nw, client, providers := storageWorld(t, 41, 6, 1<<30)
	data := mkData(42, 3000)
	var m *Manifest
	var pl *Placement
	client.Upload(data, 1024, refs(providers[:3]), 3, func(mm *Manifest, pp *Placement, err error) {
		if err != nil {
			t.Fatal(err)
		}
		m, pl = mm, pp
	})
	nw.RunAll()

	cu := NewCustodian(client, refs(providers), 30*time.Minute, 10*time.Second)
	cu.Manage(m, pl, nil)
	cu.Start()
	if cu.NumObjects() != 1 || len(cu.ManagedIDs()) != 1 {
		t.Fatal("management bookkeeping")
	}

	nw.After(45*time.Minute, func() { providers[0].Node().Crash() })
	nw.Run(3 * time.Hour)
	cu.Stop()
	nw.Run(nw.Now() + time.Hour)

	if cu.Epochs < 4 {
		t.Errorf("epochs = %d", cu.Epochs)
	}
	if cu.AuditFailures == 0 || cu.Repairs == 0 {
		t.Errorf("failures=%d repairs=%d; daemon did not react to the death", cu.AuditFailures, cu.Repairs)
	}
	if !cu.Healthy() {
		t.Error("object not restored to target redundancy")
	}
	mm, ppl := cu.Object(0)
	var got []byte
	client.Download(mm, ppl, func(d []byte, err error) {
		if err != nil {
			t.Errorf("download: %v", err)
		}
		got = d
	})
	nw.RunAll()
	if !bytes.Equal(got, data) {
		t.Error("data corrupted under management")
	}
}

func TestCustodianPaysOnlyProvers(t *testing.T) {
	nw := simnet.New(43)
	ownerKey, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		t.Fatal(err)
	}
	// Chain with a single miner to absorb payments.
	spacing := 10 * time.Second
	ccfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{ownerKey.Fingerprint(): 10_000},
	}
	miner := chain.NewMiner(nw.AddNode(), chain.NewChain(ccfg), cryptoutil.SumHash([]byte("m")),
		float64(ccfg.InitialDifficulty)/spacing.Seconds())
	miner.Start()

	client := NewClient(nw.AddNode(), 30*time.Second)
	honest := NewProvider(nw.AddNode(), 1<<30, Honest)
	cheat := NewProvider(nw.AddNode(), 1<<30, DropAfterAck)

	data := mkData(44, 1500)
	var m *Manifest
	var pl *Placement
	client.Upload(data, 0, []ProviderRef{honest.Ref(), cheat.Ref()}, 2,
		func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.Run(nw.Now() + time.Minute)

	honestAddr := cryptoutil.SumHash([]byte("honest-payout"))
	cheatAddr := cryptoutil.SumHash([]byte("cheat-payout"))
	contracts := map[ProviderRef]*Contract{
		honest.Ref(): {Client: ownerKey.Fingerprint(), Provider: honestAddr, PricePerEpoch: 3, Epochs: 10},
		cheat.Ref():  {Client: ownerKey.Fingerprint(), Provider: cheatAddr, PricePerEpoch: 3, Epochs: 10},
	}
	cu := NewCustodian(client, []ProviderRef{honest.Ref(), cheat.Ref()}, 30*time.Minute, 10*time.Second)
	cu.AttachWallet(chain.NewWallet(ownerKey, 0), miner.SubmitTx)
	cu.Manage(m, pl, contracts)
	cu.Start()
	nw.Run(2 * time.Hour)
	cu.Stop()
	miner.Stop()
	nw.RunAll()

	st := miner.Chain().State()
	if st.Balance(honestAddr) == 0 {
		t.Error("honest provider unpaid")
	}
	if st.Balance(cheatAddr) != 0 {
		t.Errorf("cheating provider got paid %d", st.Balance(cheatAddr))
	}
	if cu.PaymentsSent == 0 {
		t.Error("no payments sent")
	}
}

func TestCustodianStartStopIdempotent(t *testing.T) {
	nw, client, providers := storageWorld(t, 45, 2, 1<<30)
	cu := NewCustodian(client, refs(providers), time.Hour, time.Second)
	cu.Start()
	cu.Start() // no double loop
	cu.Stop()
	nw.Run(5 * time.Hour)
	if cu.Epochs != 0 {
		t.Errorf("stopped custodian ran %d epochs", cu.Epochs)
	}
	if !cu.Healthy() {
		t.Error("empty custodian should be healthy")
	}
}
