package storage

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Contract is a storage service agreement in the style of Sia/Filecoin
// (§3.3: "a contract is an object that defines a service agreement between
// two parties … information about storage and retrieval, pricing, and
// proof-of-storage requirements"). It is anchored on the blockchain as a
// KindContract transaction signed by the client; payments settle as
// ordinary chain payments per proven epoch.
type Contract struct {
	Client   chain.Address   `json:"client"`
	Provider chain.Address   `json:"provider"`
	FileID   cryptoutil.Hash `json:"file_id"`
	// SizeBytes is the contracted storage amount.
	SizeBytes int64 `json:"size_bytes"`
	// PricePerEpoch is paid for every epoch with a passing audit.
	PricePerEpoch uint64 `json:"price_per_epoch"`
	// Epochs is the contract duration.
	Epochs int `json:"epochs"`
	// ProofEvery is how many blocks between required proofs (informational
	// in the simulation; audits are driven by the client clock).
	ProofEvery int `json:"proof_every"`
}

// ID returns the contract's content-derived identifier.
func (ct *Contract) ID() cryptoutil.Hash { return cryptoutil.SumHash(ct.encode()) }

func (ct *Contract) encode() []byte {
	b, err := json.Marshal(ct)
	if err != nil {
		panic("storage: contract marshal cannot fail: " + err.Error())
	}
	return b
}

// DecodeContract parses a contract payload.
func DecodeContract(payload []byte) (*Contract, error) {
	var ct Contract
	if err := json.Unmarshal(payload, &ct); err != nil {
		return nil, fmt.Errorf("storage: decode contract: %w", err)
	}
	return &ct, nil
}

// TotalPrice returns the contract's maximum payout.
func (ct *Contract) TotalPrice() uint64 { return ct.PricePerEpoch * uint64(ct.Epochs) }

// AnchorTx builds the signed transaction that publishes the contract
// on-chain. nonce must be the client's current account nonce.
func (ct *Contract) AnchorTx(clientKey *cryptoutil.KeyPair, nonce uint64) *chain.Tx {
	tx := &chain.Tx{
		Kind:    chain.KindContract,
		Fee:     1,
		Nonce:   nonce,
		Payload: ct.encode(),
	}
	tx.Sign(clientKey)
	return tx
}

// PaymentTx builds the per-epoch settlement payment from client to
// provider.
func (ct *Contract) PaymentTx(clientKey *cryptoutil.KeyPair, nonce uint64) *chain.Tx {
	tx := &chain.Tx{
		To:     ct.Provider,
		Amount: ct.PricePerEpoch,
		Fee:    1,
		Nonce:  nonce,
		Kind:   chain.KindPayment,
	}
	tx.Sign(clientKey)
	return tx
}

// ContractsOnChain scans the best chain for anchored contracts, newest
// last. Only contracts whose anchoring transaction was signed by the
// declared client are returned (the chain already verified the signature;
// here we check the binding).
func ContractsOnChain(c *chain.Chain) []*Contract {
	var out []*Contract
	for _, b := range c.BestBlocks() {
		for _, tx := range b.Txs {
			if tx.Kind != chain.KindContract || tx.IsCoinbase() {
				continue
			}
			ct, err := DecodeContract(tx.Payload)
			if err != nil || ct.Client != tx.From {
				continue
			}
			out = append(out, ct)
		}
	}
	return out
}

// Ask is a provider's posted offer in the storage market.
type Ask struct {
	Ref           ProviderRef
	Address       chain.Address
	PricePerEpoch uint64
	FreeBytes     int64
}

// SelectAsks returns the n cheapest asks with at least needBytes free,
// sorted by price ascending (ties broken by node ID for determinism).
func SelectAsks(asks []Ask, needBytes int64, n int) []Ask {
	var ok []Ask
	for _, a := range asks {
		if a.FreeBytes >= needBytes {
			ok = append(ok, a)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].PricePerEpoch != ok[j].PricePerEpoch {
			return ok[i].PricePerEpoch < ok[j].PricePerEpoch
		}
		return ok[i].Ref.Node < ok[j].Ref.Node
	})
	if len(ok) > n {
		ok = ok[:n]
	}
	return ok
}
