// Package chunker implements Rabin-style content-defined chunking: a
// rolling polynomial fingerprint over a sliding byte window cuts data at
// content-determined boundaries, so that a local edit (insert, delete,
// point change) shifts only the chunks around the edit instead of
// re-aligning every chunk after it — the property that makes
// content-addressed deduplication survive real workloads (restic's
// chunker, LBFS). Boundaries are a pure function of (polynomial, bounds,
// data): no clocks, no global randomness, so two uploaders of the same
// bytes always produce the same chunk set.
package chunker

import "math/bits"

// Pol is a polynomial over GF(2), bit i holding the coefficient of x^i.
// Fingerprinting uses an irreducible polynomial of degree 53: the degree
// is fixed so that every intermediate product in the table builders stays
// inside 64 bits without multi-word arithmetic.
type Pol uint64

// polDegree is the fixed fingerprint polynomial degree. 53 is prime,
// which keeps the irreducibility test to two checks (see irreducible53),
// and deg+8 < 64 keeps the byte-append shift overflow-free.
const polDegree = 53

// DefaultPol is a known irreducible degree-53 polynomial (the one
// restic's chunker tests pin their goldens to).
const DefaultPol Pol = 0x3DA3358B4DC173

// Deg returns the degree of p, or -1 for the zero polynomial.
func (p Pol) Deg() int { return bits.Len64(uint64(p)) - 1 }

// mod reduces a modulo m (polynomial division over GF(2), remainder).
func mod(a, m Pol) Pol {
	dm := m.Deg()
	for da := a.Deg(); da >= dm; da = a.Deg() {
		a ^= m << uint(da-dm)
	}
	return a
}

// mulMod returns a·b mod m. Callers guarantee deg(m) <= 62 so the
// shift-then-reduce step cannot overflow.
func mulMod(a, b, m Pol) Pol {
	a = mod(a, m)
	var res Pol
	for b != 0 {
		if b&1 != 0 {
			res ^= a
		}
		b >>= 1
		a = mod(a<<1, m)
	}
	return res
}

// gcd returns the greatest common divisor of a and b over GF(2).
func gcd(a, b Pol) Pol {
	for b != 0 {
		a, b = b, mod(a, b)
	}
	return a
}

// irreducible53 reports whether f, of degree exactly 53, is irreducible
// over GF(2). Rabin's criterion for prime degree n needs only two checks:
// f shares no factor with x^2+x (i.e. has no linear factor), and
// x^(2^n) ≡ x (mod f).
func irreducible53(f Pol) bool {
	if f.Deg() != polDegree {
		return false
	}
	if gcd(f, Pol(0b110)) != 1 { // x^2 + x = x(x+1)
		return false
	}
	r := Pol(2) // x
	for i := 0; i < polDegree; i++ {
		r = mulMod(r, r, f) // square: x^(2^i) -> x^(2^(i+1))
	}
	return r == 2
}

// DerivePol deterministically derives an irreducible degree-53 polynomial
// from a seed: a SplitMix64 stream proposes candidates (top and constant
// coefficients forced to 1) until one passes the irreducibility test.
// About one in deg candidates is irreducible, so the walk is short, and
// the same seed always lands on the same polynomial — per-seed chunk
// boundaries are reproducible across machines and processes.
func DerivePol(seed int64) Pol {
	state := uint64(seed)
	for {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		cand := Pol(z)&(1<<polDegree-1) | 1<<polDegree | 1
		if irreducible53(cand) {
			return cand
		}
	}
}
