package chunker

import "fmt"

// windowSize is the sliding fingerprint window in bytes. 64 matches the
// restic/LBFS lineage: wide enough that boundaries depend on real
// content, narrow enough that an edit's influence dies out quickly.
const windowSize = 64

// Config sizes a chunker. AvgSize must be a power of two: the boundary
// test masks the low log2(AvgSize) bits of the fingerprint, making cuts a
// 1-in-AvgSize event per byte and the mean chunk size ≈ AvgSize.
type Config struct {
	// Pol is the irreducible fingerprint polynomial (DefaultPol or a
	// DerivePol result). Zero selects DefaultPol.
	Pol Pol
	// MinSize is the smallest cut distance; boundaries inside it are
	// ignored. Must be >= the 64-byte window.
	MinSize int
	// AvgSize is the target mean chunk size (power of two).
	AvgSize int
	// MaxSize forces a cut even when the content never triggers one.
	MaxSize int
}

// Defaults returns the conventional bounds around an average chunk size:
// min = avg/4, max = avg*4, DefaultPol.
func Defaults(avg int) Config {
	return Config{Pol: DefaultPol, MinSize: avg / 4, AvgSize: avg, MaxSize: avg * 4}
}

// Chunker cuts byte slices at content-defined boundaries. It is cheap to
// reuse (the per-polynomial tables are built once in New) and a single
// instance may be used for any number of Split calls; Split itself
// performs no heap allocation.
type Chunker struct {
	cfg       Config
	splitmask uint64
	polShift  uint
	tabOut    [256]uint64 // removes the byte leaving the window
	tabMod    [256]uint64 // reduces the byte entering the digest
	win       [windowSize]byte
	wpos      int
	digest    uint64
}

// New validates cfg and builds the fingerprint tables.
func New(cfg Config) (*Chunker, error) {
	if cfg.Pol == 0 {
		cfg.Pol = DefaultPol
	}
	if cfg.Pol.Deg() != polDegree {
		return nil, fmt.Errorf("chunker: polynomial degree %d, want %d", cfg.Pol.Deg(), polDegree)
	}
	if cfg.AvgSize <= 0 || cfg.AvgSize&(cfg.AvgSize-1) != 0 {
		return nil, fmt.Errorf("chunker: avg size %d is not a positive power of two", cfg.AvgSize)
	}
	if cfg.MinSize < windowSize {
		return nil, fmt.Errorf("chunker: min size %d below the %d-byte window", cfg.MinSize, windowSize)
	}
	if cfg.MinSize > cfg.AvgSize || cfg.AvgSize > cfg.MaxSize {
		return nil, fmt.Errorf("chunker: want min <= avg <= max, have %d/%d/%d", cfg.MinSize, cfg.AvgSize, cfg.MaxSize)
	}
	c := &Chunker{
		cfg:       cfg,
		splitmask: uint64(cfg.AvgSize - 1),
		polShift:  uint(polDegree - 8),
	}
	// tabOut[b]: the digest contribution of byte b once it has been
	// pushed windowSize-1 positions deep — xoring it out when b leaves
	// the window keeps the digest a fingerprint of exactly the window.
	for b := 0; b < 256; b++ {
		h := appendByte(0, byte(b), cfg.Pol)
		for i := 0; i < windowSize-1; i++ {
			h = appendByte(h, 0, cfg.Pol)
		}
		c.tabOut[b] = uint64(h)
	}
	// tabMod[i]: clears the 8 bits shifted past the polynomial degree and
	// folds in their remainder, keeping the digest reduced mod Pol.
	for b := 0; b < 256; b++ {
		p := Pol(b) << polDegree
		c.tabMod[b] = uint64(mod(p, cfg.Pol) | p)
	}
	return c, nil
}

// Bounds returns the configured (min, avg, max) chunk sizes.
func (c *Chunker) Bounds() (min, avg, max int) {
	return c.cfg.MinSize, c.cfg.AvgSize, c.cfg.MaxSize
}

// appendByte feeds one byte into a reduced polynomial fingerprint.
func appendByte(h Pol, b byte, pol Pol) Pol {
	return mod(h<<8|Pol(b), pol)
}

// reset prepares for a fresh chunk. The digest is seeded by sliding in a
// one-byte marker (restic does the same) so the first window's
// fingerprint is not a plain prefix hash; once the marker leaves the
// window the digest depends on content alone. All-zero input therefore
// degenerates to MinSize cuts — bounded and deterministic, the accepted
// Rabin pathology.
func (c *Chunker) reset() {
	c.win = [windowSize]byte{}
	c.wpos = 0
	c.digest = 0
	c.slide(1)
}

// slide rolls the window forward by one byte.
func (c *Chunker) slide(b byte) {
	out := c.win[c.wpos]
	c.win[c.wpos] = b
	c.digest ^= c.tabOut[out]
	c.wpos++
	if c.wpos >= windowSize {
		c.wpos = 0
	}
	index := byte(c.digest >> c.polShift)
	c.digest = (c.digest<<8 | uint64(b)) ^ c.tabMod[index]
}

// Split cuts data at content-defined boundaries and passes each chunk to
// emit, in order. Chunks are subslices of data (no copying); every chunk
// is at most MaxSize and, except possibly the final one, at least
// MinSize. Empty input emits one empty chunk, mirroring the fixed-size
// splitter. Split allocates nothing, so a reused Chunker gives an
// allocation-free hot path.
func (c *Chunker) Split(data []byte, emit func(chunk []byte)) {
	if len(data) == 0 {
		emit(data)
		return
	}
	start := 0
	c.reset()
	for pos := 0; pos < len(data); pos++ {
		c.slide(data[pos])
		n := pos - start + 1
		if (n >= c.cfg.MinSize && c.digest&c.splitmask == 0) || n >= c.cfg.MaxSize {
			emit(data[start : pos+1])
			start = pos + 1
			c.reset()
		}
	}
	if start < len(data) {
		emit(data[start:])
	}
}

// SplitAll is Split collecting the chunks into a slice.
func (c *Chunker) SplitAll(data []byte) [][]byte {
	var out [][]byte
	c.Split(data, func(chunk []byte) { out = append(out, chunk) })
	return out
}

// Cuts returns the end offset of every chunk of data — the variable-length
// chunk table a manifest records.
func (c *Chunker) Cuts(data []byte) []int {
	var cuts []int
	end := 0
	c.Split(data, func(chunk []byte) {
		end += len(chunk)
		cuts = append(cuts, end)
	})
	return cuts
}

// MaxChunks bounds how many chunks Split can emit for n bytes.
func (c *Chunker) MaxChunks(n int) int {
	if n <= 0 {
		return 1
	}
	return n/c.cfg.MinSize + 1
}
