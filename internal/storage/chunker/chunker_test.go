package chunker

import (
	"bytes"
	"math/rand"
	"testing"
)

func testData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

func TestDefaultPolIrreducible(t *testing.T) {
	if !irreducible53(DefaultPol) {
		t.Fatal("DefaultPol fails the irreducibility test")
	}
	if irreducible53(DefaultPol ^ 0b1010000) {
		// A perturbed polynomial being irreducible is possible in general,
		// but this particular one is not; the test guards against the
		// checker degenerating into always-true.
		t.Fatal("perturbed polynomial reported irreducible")
	}
}

func TestDerivePolDeterministic(t *testing.T) {
	a, b := DerivePol(42), DerivePol(42)
	if a != b {
		t.Fatalf("same seed, different polynomials: %x vs %x", a, b)
	}
	if !irreducible53(a) {
		t.Fatalf("derived polynomial %x not irreducible", a)
	}
	if DerivePol(43) == a {
		t.Fatal("different seeds landed on the same polynomial")
	}
}

func TestSplitRoundTrip(t *testing.T) {
	c, err := New(Defaults(1 << 10))
	if err != nil {
		t.Fatal(err)
	}
	data := testData(64<<10, 7)
	var joined []byte
	nchunks := 0
	c.Split(data, func(chunk []byte) {
		joined = append(joined, chunk...)
		nchunks++
	})
	if !bytes.Equal(joined, data) {
		t.Fatal("split chunks do not reassemble to the input")
	}
	if nchunks < 16 {
		t.Errorf("64KB at avg 1KB produced only %d chunks", nchunks)
	}
}

func TestSplitBounds(t *testing.T) {
	cfg := Defaults(512)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := testData(128<<10, 9)
	chunks := c.SplitAll(data)
	for i, ch := range chunks {
		if len(ch) > cfg.MaxSize {
			t.Fatalf("chunk %d has %d bytes, max %d", i, len(ch), cfg.MaxSize)
		}
		if i < len(chunks)-1 && len(ch) < cfg.MinSize {
			t.Fatalf("non-final chunk %d has %d bytes, min %d", i, len(ch), cfg.MinSize)
		}
	}
	// All-zero input is the classic Rabin pathology: once the reset
	// marker leaves the window the digest sits at zero, so every allowed
	// position is a boundary and chunks come out at exactly MinSize —
	// still deterministic and still inside the bounds.
	zeros := make([]byte, 16<<10)
	zchunks := c.SplitAll(zeros)
	for i, ch := range zchunks {
		if i < len(zchunks)-1 && len(ch) != cfg.MinSize {
			t.Fatalf("zero-run chunk %d has %d bytes, want MinSize %d", i, len(ch), cfg.MinSize)
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	c, _ := New(Defaults(512))
	chunks := c.SplitAll(nil)
	if len(chunks) != 1 || len(chunks[0]) != 0 {
		t.Fatalf("empty input: got %d chunks", len(chunks))
	}
}

func TestSplitDeterministicAndReusable(t *testing.T) {
	c, _ := New(Defaults(512))
	data := testData(32<<10, 11)
	first := c.Cuts(data)
	// Interleave an unrelated split to prove instance state fully resets.
	c.Split(testData(4<<10, 12), func([]byte) {})
	second := c.Cuts(data)
	if len(first) != len(second) {
		t.Fatalf("cut count changed across reuse: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cut %d moved: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestDifferentPolsDifferentCuts(t *testing.T) {
	data := testData(64<<10, 13)
	cfgA := Defaults(512)
	cfgB := Defaults(512)
	cfgB.Pol = DerivePol(99)
	a, _ := New(cfgA)
	b, _ := New(cfgB)
	ca, cb := a.Cuts(data), b.Cuts(data)
	same := len(ca) == len(cb)
	if same {
		for i := range ca {
			if ca[i] != cb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two different polynomials produced identical cut sets")
	}
}

func TestContentLocality(t *testing.T) {
	cfg := Defaults(512)
	c, _ := New(cfg)
	data := testData(64<<10, 15)
	before := chunkSet(c, data)
	edited := append([]byte{}, data...)
	edited[31337] ^= 0x5a
	after := chunkSet(c, edited)
	changed := diffCount(before, after)
	if changed > 4 {
		t.Fatalf("one-byte edit changed %d chunks, want O(1)", changed)
	}
}

// chunkSet returns chunk contents keyed for multiset comparison.
func chunkSet(c *Chunker, data []byte) map[string]int {
	set := map[string]int{}
	c.Split(data, func(ch []byte) { set[string(ch)]++ })
	return set
}

// diffCount is the size of the larger one-sided multiset difference.
func diffCount(a, b map[string]int) int {
	d := 0
	for k, n := range a {
		if m := b[k]; n > m {
			d += n - m
		}
	}
	e := 0
	for k, n := range b {
		if m := a[k]; n > m {
			e += n - m
		}
	}
	if e > d {
		return e
	}
	return d
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Pol: DefaultPol, MinSize: 16, AvgSize: 256, MaxSize: 1024},   // min below window
		{Pol: DefaultPol, MinSize: 128, AvgSize: 300, MaxSize: 1024},  // avg not a power of two
		{Pol: DefaultPol, MinSize: 2048, AvgSize: 1024, MaxSize: 512}, // inverted bounds
		{Pol: 0xff, MinSize: 128, AvgSize: 512, MaxSize: 2048},        // wrong degree
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := New(Config{MinSize: 128, AvgSize: 512, MaxSize: 2048}); err != nil {
		t.Errorf("zero Pol should select DefaultPol: %v", err)
	}
}

func TestAverageChunkSizeNearTarget(t *testing.T) {
	cfg := Defaults(1 << 10)
	c, _ := New(cfg)
	data := testData(1<<20, 21)
	chunks := c.SplitAll(data)
	avg := len(data) / len(chunks)
	// The cut event is geometric with mean AvgSize, clipped by min/max;
	// accept a generous band.
	if avg < cfg.AvgSize/3 || avg > cfg.AvgSize*3 {
		t.Fatalf("mean chunk size %d, target %d", avg, cfg.AvgSize)
	}
}
