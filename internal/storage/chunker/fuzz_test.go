package chunker

import (
	"bytes"
	"testing"
)

// FuzzChunkerRoundTrip: for arbitrary data and an arbitrary average-size
// selector, split→join is the identity and every chunk respects the
// configured bounds (the final chunk may run short). The polynomial is
// derived from the fuzzed seed so the property holds for the whole
// family, not just DefaultPol.
func FuzzChunkerRoundTrip(f *testing.F) {
	f.Add([]byte("hello, content-defined world"), uint8(0), int64(1))
	f.Add([]byte{}, uint8(1), int64(2))
	f.Add(bytes.Repeat([]byte{0}, 4096), uint8(2), int64(3))
	f.Add(bytes.Repeat([]byte("abcd1234"), 1024), uint8(3), int64(42))
	f.Fuzz(func(t *testing.T, data []byte, avgSel uint8, polSeed int64) {
		avg := 256 << (avgSel % 4) // 256..2048, always a power of two
		cfg := Defaults(avg)
		cfg.Pol = DerivePol(polSeed)
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v", err)
		}
		var joined []byte
		count := 0
		c.Split(data, func(ch []byte) {
			count++
			if len(ch) > cfg.MaxSize {
				t.Fatalf("chunk %d has %d bytes, max %d", count, len(ch), cfg.MaxSize)
			}
			joined = append(joined, ch...)
		})
		if !bytes.Equal(joined, data) {
			t.Fatal("split chunks do not reassemble to the input")
		}
		if len(data) == 0 {
			if count != 1 {
				t.Fatalf("empty input emitted %d chunks, want 1", count)
			}
			return
		}
		// All but the final chunk must reach MinSize.
		short := 0
		c.Split(data, func(ch []byte) {
			if len(ch) < cfg.MinSize {
				short++
			}
		})
		if short > 1 {
			t.Fatalf("%d chunks below MinSize, only the final may be", short)
		}
	})
}
