package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cryptoutil"
)

// Client-side encryption: the §5.3 "guerrilla tactic" — "running encrypted
// services on the cloud" — and PrPl's model of keeping data "in encrypted
// form on public storage providers". The owner encrypts every chunk under
// a key derived from a private master secret before upload; providers (or
// a cloud) store and serve ciphertext they cannot read, decoupling
// *authority* over the data from the *infrastructure* holding it. All
// placement, audit, and repair machinery operates unchanged on the sealed
// bytes.

// BoxKey is an owner's client-side encryption master secret.
type BoxKey struct {
	master []byte
}

// NewBoxKey derives a box key from a master secret (e.g. the owner's
// signing key seed or a passphrase-derived secret).
func NewBoxKey(masterSecret []byte) *BoxKey {
	return &BoxKey{master: cryptoutil.HKDF(masterSecret, nil, []byte("storage-box-key"), 32)}
}

// chunkKey derives a distinct AES key per chunk index so identical chunks
// at different positions produce unlinkable ciphertexts.
func (k *BoxKey) chunkKey(index int) []byte {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(index))
	return cryptoutil.HKDF(k.master, idx[:], []byte("storage-box-chunk"), 32)
}

// EncryptObject seals plaintext into an uploadable blob: a random-looking
// byte stream providers cannot interpret. Layout: per-chunk AES-GCM frames
// of fixed plaintext size, each with its own nonce.
const boxFrameSize = 4096

// EncryptObject encrypts data for upload. The result is what Upload (or
// UploadErasure) should receive; the owner keeps only the BoxKey and the
// original length.
func (k *BoxKey) EncryptObject(data []byte) ([]byte, error) {
	var out []byte
	for i, off := 0, 0; off < len(data) || (off == 0 && len(data) == 0); i, off = i+1, off+boxFrameSize {
		end := off + boxFrameSize
		if end > len(data) {
			end = len(data)
		}
		nonce := make([]byte, 12)
		binary.BigEndian.PutUint64(nonce[:8], uint64(i))
		ct, err := cryptoutil.Seal(k.chunkKey(i), nonce, data[off:end], []byte("box-frame"))
		if err != nil {
			return nil, err
		}
		var lenHdr [4]byte
		binary.BigEndian.PutUint32(lenHdr[:], uint32(len(ct)))
		out = append(out, lenHdr[:]...)
		out = append(out, ct...)
		if len(data) == 0 {
			break
		}
	}
	return out, nil
}

// DecryptObject reverses EncryptObject.
func (k *BoxKey) DecryptObject(sealed []byte) ([]byte, error) {
	var out []byte
	for i, off := 0, 0; off < len(sealed); i++ {
		if off+4 > len(sealed) {
			return nil, fmt.Errorf("storage: sealed object truncated at frame %d", i)
		}
		n := int(binary.BigEndian.Uint32(sealed[off : off+4]))
		off += 4
		if off+n > len(sealed) {
			return nil, fmt.Errorf("storage: sealed frame %d overruns buffer", i)
		}
		nonce := make([]byte, 12)
		binary.BigEndian.PutUint64(nonce[:8], uint64(i))
		pt, err := cryptoutil.Open(k.chunkKey(i), nonce, sealed[off:off+n], []byte("box-frame"))
		if err != nil {
			return nil, fmt.Errorf("storage: frame %d: %w", i, err)
		}
		out = append(out, pt...)
		off += n
	}
	return out, nil
}
