// Package storage implements the decentralized storage systems of the
// paper's §3.3: content-addressed chunk storage on untrusted providers,
// replicated and erasure-coded placement, failure repair, the
// incentive-proof family (proof-of-storage, proof-of-retrievability,
// proof-of-replication with Sybil/outsourcing/generation attack detection),
// on-chain storage contracts with per-epoch payments (Sia/Filecoin style),
// and IPFS-style bitswap reciprocity ledgers.
//
// Every network interaction runs over internal/simnet, so durability and
// repair behaviour can be measured under churn (experiments X5, X6; Table 2
// rows are regenerated from these implementations).
package storage

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// DefaultChunkSize is the chunk granularity used when a caller does not
// specify one. Tests and simulations usually use smaller chunks.
const DefaultChunkSize = 64 << 10

// proofLeafSize is the Merkle leaf granularity inside a chunk for
// proof-of-storage challenges.
const proofLeafSize = 256

// Chunk is one content-addressed unit of data.
type Chunk struct {
	ID   cryptoutil.Hash
	Data []byte
}

// NewChunk builds a chunk with its content address.
func NewChunk(data []byte) Chunk {
	return Chunk{ID: cryptoutil.SumHash(data), Data: data}
}

// Verify reports whether the data still matches the content address.
func (c Chunk) Verify() bool { return cryptoutil.SumHash(c.Data) == c.ID }

// SplitChunks cuts data into content-addressed chunks of at most chunkSize
// bytes (the final chunk may be shorter). chunkSize <= 0 selects
// DefaultChunkSize.
func SplitChunks(data []byte, chunkSize int) []Chunk {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var chunks []Chunk
	for start := 0; start < len(data); start += chunkSize {
		end := start + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, NewChunk(data[start:end]))
	}
	if len(chunks) == 0 {
		chunks = append(chunks, NewChunk(nil))
	}
	return chunks
}

// PlacementMode selects the redundancy mechanism.
type PlacementMode int

const (
	// ModeReplicate stores every chunk on Replicas distinct providers.
	ModeReplicate PlacementMode = iota
	// ModeErasure splits the file into DataShards chunks and stores
	// DataShards+ParityShards erasure-coded shards on distinct providers.
	ModeErasure
)

// String names the mode.
func (m PlacementMode) String() string {
	switch m {
	case ModeReplicate:
		return "replicate"
	case ModeErasure:
		return "erasure"
	}
	return "unknown"
}

// Manifest describes a stored object: how to find, verify, and reassemble
// it. The manifest is small and kept by the owner (or anchored on-chain via
// a contract); the bulk data lives on providers.
type Manifest struct {
	// FileID is the hash of the original file bytes.
	FileID cryptoutil.Hash
	// Size is the original length in bytes.
	Size int
	// ChunkSize is the split granularity used at upload (replicate mode,
	// fixed-size chunking). Zero for content-defined chunking.
	ChunkSize int
	Mode      PlacementMode
	// Chunks lists the content addresses in order. In erasure mode these
	// are the shard addresses (data shards first, systematic order).
	Chunks []cryptoutil.Hash
	// ChunkLens is the variable-length chunk table of a content-defined
	// upload: the byte length of each chunk, parallel to Chunks. Empty
	// for fixed-size and erasure manifests, whose chunk lengths are
	// derivable from ChunkSize/Size.
	ChunkLens []int
	// ChunkRoots holds the per-chunk proof-of-storage Merkle root.
	ChunkRoots []cryptoutil.Hash
	// Erasure parameters (Mode == ModeErasure).
	DataShards, ParityShards int
	// Replicas is the target copy count (Mode == ModeReplicate).
	Replicas int
}

// RedundancyFactor returns the storage expansion of the manifest's scheme.
func (m *Manifest) RedundancyFactor() float64 {
	if m.Mode == ModeErasure && m.DataShards > 0 {
		return float64(m.DataShards+m.ParityShards) / float64(m.DataShards)
	}
	return float64(m.Replicas)
}

// chunkProofRoot computes the proof-of-storage Merkle root of a chunk: a
// tree over proofLeafSize-byte leaves.
func chunkProofRoot(data []byte) cryptoutil.Hash {
	return cryptoutil.MerkleRoot(proofLeaves(data))
}

func proofLeaves(data []byte) [][]byte {
	var leaves [][]byte
	if len(data) == 0 {
		return [][]byte{nil}
	}
	for start := 0; start < len(data); start += proofLeafSize {
		end := start + proofLeafSize
		if end > len(data) {
			end = len(data)
		}
		leaves = append(leaves, data[start:end])
	}
	return leaves
}

// numProofLeaves returns how many proof leaves a chunk of size n has.
func numProofLeaves(n int) int {
	if n == 0 {
		return 1
	}
	return (n + proofLeafSize - 1) / proofLeafSize
}

// Placement records where each chunk of a manifest currently lives. The
// owner updates it during upload and repair.
type Placement struct {
	// Holders[chunkID] lists provider node IDs believed to hold the chunk.
	Holders map[cryptoutil.Hash][]ProviderRef
}

// NewPlacement creates an empty placement map.
func NewPlacement() *Placement {
	return &Placement{Holders: map[cryptoutil.Hash][]ProviderRef{}}
}

// Add records that ref holds chunk id (idempotent).
func (p *Placement) Add(id cryptoutil.Hash, ref ProviderRef) {
	for _, r := range p.Holders[id] {
		if r.Node == ref.Node {
			return
		}
	}
	p.Holders[id] = append(p.Holders[id], ref)
}

// Remove drops ref from chunk id's holder list. The holder list is
// rebuilt rather than shifted in place: in-flight downloads hold
// references to the old slice, and mutating its backing array under them
// would corrupt their failover order.
func (p *Placement) Remove(id cryptoutil.Hash, ref ProviderRef) {
	hs := p.Holders[id]
	for i, r := range hs {
		if r.Node == ref.Node {
			out := make([]ProviderRef, 0, len(hs)-1)
			out = append(out, hs[:i]...)
			out = append(out, hs[i+1:]...)
			p.Holders[id] = out
			return
		}
	}
}

// Count returns how many providers hold chunk id.
func (p *Placement) Count(id cryptoutil.Hash) int { return len(p.Holders[id]) }

// MinRedundancy returns the smallest holder count across the manifest's
// chunks — the object's weakest link.
func (p *Placement) MinRedundancy(m *Manifest) int {
	min := -1
	for _, id := range m.Chunks {
		n := p.Count(id)
		if min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

func (p *Placement) String() string {
	return fmt.Sprintf("placement over %d chunks", len(p.Holders))
}
