package storage

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/overload"
	"repro/internal/simnet"
)

// ProviderRef addresses a storage provider on the simulated network.
type ProviderRef struct {
	Node simnet.NodeID
}

// CheatMode configures a dishonest provider, modelling the attacks §3.3's
// proof mechanisms exist to catch.
type CheatMode int

const (
	// Honest providers store and serve faithfully.
	Honest CheatMode = iota
	// DropAfterAck acknowledges writes, then discards the data.
	DropAfterAck
	// CorruptBits stores the data but flips bits before serving or
	// proving.
	CorruptBits
	// DedupReplicas claims to hold every sealed replica but stores only
	// the first, re-sealing others on demand (Sybil/generation attack
	// against proof-of-replication).
	DedupReplicas
	// OutsourceFetch stores nothing locally and fetches from an accomplice
	// provider when challenged (outsourcing attack); responses arrive
	// late.
	OutsourceFetch
)

// RPC method names.
const (
	methodPut          = "storage.put"
	methodGet          = "storage.get"
	methodHas          = "storage.has"
	methodPin          = "storage.pin" // GC exemption (contracts, repairs)
	methodUnpin        = "storage.unpin"
	methodRelease      = "storage.release"      // drop one upload reference
	methodChallenge    = "storage.challenge"    // proof-of-storage
	methodRetChallenge = "storage.retchallenge" // proof-of-retrievability
	methodPutSealed    = "storage.putsealed"    // proof-of-replication
	methodRepChallenge = "storage.repchallenge"
)

type putReq struct {
	Chunk Chunk
}

type getResp struct {
	Data []byte
	OK   bool
}

type challengeReq struct {
	ChunkID cryptoutil.Hash
	Leaf    int
}

type challengeResp struct {
	LeafData []byte
	Proof    *cryptoutil.MerkleProof
	OK       bool
}

type retChallengeReq struct {
	ChunkID cryptoutil.Hash
	Salt    []byte
}

type retChallengeResp struct {
	MAC []byte
	OK  bool
}

type putSealedReq struct {
	ChunkID cryptoutil.Hash // original chunk the replica derives from
	Replica int
	Data    []byte // sealed bytes
}

type repChallengeReq struct {
	ChunkID cryptoutil.Hash
	Replica int
	Leaf    int
}

// Provider is one storage node. Capacity is in bytes; Price is the posted
// price per byte-epoch used by the contract market. Chunk bytes live in a
// tiered LocalStore: content-address dedup, a bounded memory tier over
// the simulated disk, and (when enabled) capacity-triggered GC.
type Provider struct {
	rpc      *simnet.RPCNode
	capacity int64
	price    uint64
	cheat    CheatMode
	// accomplice is the provider OutsourceFetch cheaters fetch from.
	accomplice simnet.NodeID
	store      *LocalStore
	// sealed[chunkID][replica] holds sealed replica bytes, accounted
	// separately from the chunk store.
	sealed     map[cryptoutil.Hash]map[int][]byte
	sealedUsed int64
	// sealDelayPerByte is the simulated cost of the sealing transform;
	// generation-attack detection relies on it being much larger than the
	// challenge deadline.
	sealDelayPerByte time.Duration
	// Stats.
	Stores, Serves, Challenges int
}

// ProviderConfig selects a provider's storage tiering and accounting.
type ProviderConfig struct {
	// Capacity bounds the disk tier in bytes.
	Capacity int64
	// MemCapacity bounds the memory cache tier; 0 disables it.
	MemCapacity int64
	// GC enables capacity-triggered disk GC (see LocalStoreConfig.GC).
	GC bool
	// GCLowWater overrides the GC low-water fraction (0 = default).
	GCLowWater float64
	// Cheat selects the provider's honesty model.
	Cheat CheatMode
	// Metrics wires storage.tier.*, storage.dedup.ratio and
	// storage.gc.reclaimed_bytes into the node's obs registry. Off by
	// default so historical worlds keep their exact metric sets.
	Metrics bool
	// Overload, when enabled, puts the provider's data plane (get) behind
	// server-side overload control while the coordination and audit
	// methods — has/pin/unpin/release and all proof challenges, each a
	// deadline-sensitive answer far smaller than a chunk — ride the
	// priority control lane. Off by default: the zero value is a strict
	// passthrough, keeping historical worlds byte-identical.
	Overload overload.Config
}

// NewProvider starts a provider with the given capacity (bytes) and cheat
// mode on node, in the historical configuration: no memory tier, no GC,
// no tier metrics — byte-identical behaviour to the flat store, plus
// content-address dedup (identical behaviour on the wire: a duplicate
// put is acknowledged either way, it just no longer doubles the bytes).
func NewProvider(node *simnet.Node, capacity int64, cheat CheatMode) *Provider {
	return NewProviderWith(node, ProviderConfig{Capacity: capacity, Cheat: cheat})
}

// NewProviderWith starts a provider with explicit tiering configuration.
func NewProviderWith(node *simnet.Node, cfg ProviderConfig) *Provider {
	p := &Provider{
		rpc:      simnet.NewRPCNode(node),
		capacity: cfg.Capacity,
		cheat:    cfg.Cheat,
		store: NewLocalStore(LocalStoreConfig{
			Capacity:    cfg.Capacity,
			MemCapacity: cfg.MemCapacity,
			GC:          cfg.GC,
			GCLowWater:  cfg.GCLowWater,
		}),
		sealed:           map[cryptoutil.Hash]map[int][]byte{},
		sealDelayPerByte: 10 * time.Microsecond,
	}
	if cfg.Metrics {
		p.store.AttachMetrics(node.Obs())
	}
	cheat := cfg.Cheat
	ov := overload.New(p.rpc, cfg.Overload)
	p.rpc.Serve(methodPut, p.onPut)
	p.rpc.Serve(methodPutSealed, p.onPutSealed)
	ov.Protect(methodGet, p.onGet)
	ov.Control(methodHas, p.onHas)
	ov.Control(methodPin, p.onPin)
	ov.Control(methodUnpin, p.onUnpin)
	ov.Control(methodRelease, p.onRelease)
	ov.Control(methodChallenge, p.onChallenge)
	ov.Control(methodRetChallenge, p.onRetChallenge)
	ov.Control(methodRepChallenge, p.onRepChallenge)
	if cheat == OutsourceFetch {
		// The outsourcing attacker answers data requests and proofs by
		// first fetching the chunk from an accomplice — correct answers,
		// but one network round-trip late. Verifiers with a tight deadline
		// catch the added latency (§3.3 "Outsourcing Attacks").
		p.rpc.ServeAsync(methodGet, func(from simnet.NodeID, req any, reply func(any, int)) {
			id, ok := req.(cryptoutil.Hash)
			if !ok {
				reply(getResp{}, 8)
				return
			}
			p.fetchFromAccomplice(id, func(data []byte, ok bool) {
				if !ok {
					reply(getResp{}, 8)
					return
				}
				p.Serves++
				reply(getResp{Data: data, OK: true}, 16+len(data))
			})
		})
		p.rpc.ServeAsync(methodChallenge, func(from simnet.NodeID, req any, reply func(any, int)) {
			r, ok := req.(challengeReq)
			if !ok {
				reply(challengeResp{}, 8)
				return
			}
			p.Challenges++
			p.fetchFromAccomplice(r.ChunkID, func(data []byte, ok bool) {
				if !ok {
					reply(challengeResp{}, 8)
					return
				}
				reply(buildStorageProof(data, r.Leaf))
			})
		})
		p.rpc.ServeAsync(methodRetChallenge, func(from simnet.NodeID, req any, reply func(any, int)) {
			r, ok := req.(retChallengeReq)
			if !ok {
				reply(retChallengeResp{}, 8)
				return
			}
			p.Challenges++
			p.fetchFromAccomplice(r.ChunkID, func(data []byte, ok bool) {
				if !ok {
					reply(retChallengeResp{}, 8)
					return
				}
				reply(retChallengeResp{MAC: cryptoutil.HMAC256(r.Salt, data), OK: true}, 48)
			})
		})
	}
	return p
}

// fetchFromAccomplice pulls a chunk from the attacker's accomplice node.
func (p *Provider) fetchFromAccomplice(id cryptoutil.Hash, done func(data []byte, ok bool)) {
	p.rpc.Call(p.accomplice, methodGet, id, 40, 30*time.Second, func(resp any, err error) {
		if err != nil {
			done(nil, false)
			return
		}
		gr, ok := resp.(getResp)
		if !ok || !gr.OK {
			done(nil, false)
			return
		}
		done(gr.Data, true)
	})
}

// buildStorageProof computes the Merkle challenge response for chunk data.
func buildStorageProof(data []byte, leaf int) (challengeResp, int) {
	leaves := proofLeaves(data)
	if leaf < 0 || leaf >= len(leaves) {
		return challengeResp{}, 8
	}
	tree, err := cryptoutil.NewMerkleTree(leaves)
	if err != nil {
		return challengeResp{}, 8
	}
	proof, err := tree.Prove(leaf)
	if err != nil {
		return challengeResp{}, 8
	}
	return challengeResp{LeafData: leaves[leaf], Proof: proof, OK: true}, 64 + len(leaves[leaf]) + 32*len(proof.Steps)
}

// Node returns the provider's simnet node.
func (p *Provider) Node() *simnet.Node { return p.rpc.Node() }

// Ref returns the provider's network reference.
func (p *Provider) Ref() ProviderRef { return ProviderRef{Node: p.rpc.Node().ID()} }

// SetPrice posts the provider's price per byte-epoch.
func (p *Provider) SetPrice(price uint64) { p.price = price }

// Price returns the posted price.
func (p *Provider) Price() uint64 { return p.price }

// SetAccomplice points an OutsourceFetch cheater at the provider it
// secretly fetches from.
func (p *Provider) SetAccomplice(n simnet.NodeID) { p.accomplice = n }

// Used returns the bytes currently stored (chunk store plus sealed
// replicas).
func (p *Provider) Used() int64 { return p.store.PhysicalBytes() + p.sealedUsed }

// Capacity returns the provider's capacity in bytes.
func (p *Provider) Capacity() int64 { return p.capacity }

// Store exposes the provider's tiered localstore (test/experiment
// introspection: dedup ratio, tier hits, GC reclaim, pin state).
func (p *Provider) Store() *LocalStore { return p.store }

// HasChunk reports whether the provider truly holds the chunk (test/debug
// introspection, not an RPC).
func (p *Provider) HasChunk(id cryptoutil.Hash) bool { return p.store.Has(id) }

func (p *Provider) onPut(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(putReq)
	if !ok || !r.Chunk.Verify() {
		return false, 8
	}
	switch p.cheat {
	case DropAfterAck, OutsourceFetch:
		p.Stores++
		return true, 8 // lie
	}
	data := r.Chunk.Data
	if p.cheat == CorruptBits && len(data) > 0 {
		data = append([]byte{}, data...)
		data[0] ^= 0xff
	}
	if !p.store.Put(r.Chunk.ID, data) {
		return false, 8
	}
	p.Stores++
	return true, 8
}

func (p *Provider) onGet(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return getResp{}, 8
	}
	data, have := p.store.Get(id)
	if !have {
		return getResp{}, 8
	}
	p.Serves++
	return getResp{Data: data, OK: true}, 16 + len(data)
}

func (p *Provider) onHas(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return false, 8
	}
	if p.cheat == DropAfterAck || p.cheat == OutsourceFetch {
		return true, 8 // keep lying
	}
	return p.store.Has(id), 8
}

// onPin marks a chunk GC-exempt; live contracts and in-flight repairs
// hold pins. Lying providers acknowledge pins on data they never kept,
// consistent with their other answers.
func (p *Provider) onPin(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return false, 8
	}
	if p.cheat == DropAfterAck || p.cheat == OutsourceFetch {
		return true, 8 // lie
	}
	return p.store.Pin(id), 8
}

func (p *Provider) onUnpin(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return false, 8
	}
	p.store.Unpin(id)
	return true, 8
}

// onRelease drops one upload reference, making the chunk collectable
// once unpinned — the owner's way of saying an object was deleted.
func (p *Provider) onRelease(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return false, 8
	}
	p.store.Release(id)
	return true, 8
}

// onChallenge answers a proof-of-storage Merkle challenge.
func (p *Provider) onChallenge(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(challengeReq)
	if !ok {
		return challengeResp{}, 8
	}
	p.Challenges++
	data, have := p.store.Peek(r.ChunkID)
	if !have {
		return challengeResp{}, 8
	}
	return buildStorageProof(data, r.Leaf)
}

// onRetChallenge answers a proof-of-retrievability sentinel challenge:
// HMAC(salt, chunk).
func (p *Provider) onRetChallenge(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(retChallengeReq)
	if !ok {
		return retChallengeResp{}, 8
	}
	p.Challenges++
	data, have := p.store.Peek(r.ChunkID)
	if !have {
		return retChallengeResp{}, 8
	}
	return retChallengeResp{MAC: cryptoutil.HMAC256(r.Salt, data), OK: true}, 48
}

func (p *Provider) onPutSealed(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(putSealedReq)
	if !ok {
		return false, 8
	}
	if p.Used()+int64(len(r.Data)) > p.capacity {
		return false, 8
	}
	if p.cheat == DropAfterAck || p.cheat == OutsourceFetch {
		p.Stores++
		return true, 8 // lie, as for plain chunks
	}
	if p.cheat == CorruptBits && len(r.Data) > 0 {
		r.Data = append([]byte{}, r.Data...)
		r.Data[0] ^= 0xff
	}
	if p.cheat == DedupReplicas && r.Replica > 0 {
		// Claim success but store only replica 0; keep the original chunk
		// (needed for on-demand re-sealing) via replica 0's slot.
		p.Stores++
		return true, 8
	}
	if p.sealed[r.ChunkID] == nil {
		p.sealed[r.ChunkID] = map[int][]byte{}
	}
	p.sealed[r.ChunkID][r.Replica] = append([]byte{}, r.Data...)
	p.sealedUsed += int64(len(r.Data))
	p.Stores++
	return true, 8
}

// onRepChallenge answers a proof-of-replication challenge: a Merkle leaf of
// the sealed replica. Cheating providers can regenerate the sealed data,
// but regeneration costs sealDelayPerByte — the response arrives after the
// verifier's deadline (generation-attack detection by timing, as in
// Filecoin's slow sealing function).
func (p *Provider) onRepChallenge(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(repChallengeReq)
	if !ok {
		return challengeResp{}, 8
	}
	p.Challenges++
	replicas := p.sealed[r.ChunkID]
	data, have := replicas[r.Replica]
	if !have {
		// A DedupReplicas cheater could re-seal the missing replica from
		// replica 0 on demand, but sealing costs sealDelayPerByte per byte
		// — far beyond the verifier's challenge deadline. A late response
		// is indistinguishable from none, so the cheater simply fails the
		// challenge (generation-attack detection by slow sealing, as in
		// Filecoin).
		return challengeResp{}, 8
	}
	return buildStorageProof(data, r.Leaf)
}

// Probe asks a provider whether it (claims to) hold a chunk — a cheap
// liveness/possession hint. Unlike a proof-of-storage challenge, the
// answer is unverified: a lying provider (DropAfterAck) will claim
// possession, which is exactly why the proof mechanisms exist.
func (c *Client) Probe(holder ProviderRef, id cryptoutil.Hash, timeout time.Duration, done func(claims bool, reachable bool)) {
	c.rpc.Call(holder.Node, methodHas, id, 40, timeout, func(resp any, err error) {
		if err != nil {
			done(false, false)
			return
		}
		has, _ := resp.(bool)
		done(has, true)
	})
}
