package storage

import (
	"bytes"
	"encoding/binary"
	"io"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Proof-of-retrievability (Storj-style sentinels): before uploading, the
// owner precomputes challenge/response pairs (salt, HMAC(salt, chunk)) and
// keeps them. Each audit spends one pair; the provider cannot answer
// without the chunk bytes, and the owner needs none of the data to verify.

// Sentinel is one unspent retrievability challenge.
type Sentinel struct {
	Salt []byte
	MAC  []byte
}

// MakeSentinels precomputes n challenge pairs for a chunk.
func MakeSentinels(rand io.Reader, chunk []byte, n int) ([]Sentinel, error) {
	out := make([]Sentinel, n)
	for i := range out {
		salt := make([]byte, 16)
		if _, err := io.ReadFull(rand, salt); err != nil {
			return nil, err
		}
		out[i] = Sentinel{Salt: salt, MAC: cryptoutil.HMAC256(salt, chunk)}
	}
	return out, nil
}

// RetAudit spends one sentinel against a holder: it sends the salt and
// checks the returned MAC within deadline. done reports whether the
// provider proved retrievability.
func (c *Client) RetAudit(chunkID cryptoutil.Hash, holder ProviderRef, s Sentinel, deadline time.Duration, done func(ok bool)) {
	req := retChallengeReq{ChunkID: chunkID, Salt: s.Salt}
	c.rpc.Call(holder.Node, methodRetChallenge, req, 64, deadline, func(resp any, err error) {
		if err != nil {
			done(false)
			return
		}
		r, ok := resp.(retChallengeResp)
		done(ok && r.OK && bytes.Equal(r.MAC, s.MAC))
	})
}

// Proof-of-replication (Filecoin-style, simplified): each replica of a
// chunk is "sealed" with a provider- and replica-specific keystream before
// upload. Sealing is deliberately slow (simulated via Provider's
// sealDelayPerByte), so a provider that stores one copy cannot regenerate
// the others within a challenge deadline; a provider that claims extra
// identities still has to store one distinct sealed replica per identity.
// Sealing is an involution (XOR), so the original data is recoverable from
// any replica.

// Seal transforms chunk data into the sealed replica for (provider,
// replica). Applying Seal twice with the same parameters restores the
// original.
func Seal(data []byte, provider simnet.NodeID, replica int) []byte {
	if len(data) == 0 {
		return nil
	}
	stream := sealStream(len(data), provider, replica)
	out := make([]byte, len(data))
	for i := range data {
		out[i] = data[i] ^ stream[i]
	}
	return out
}

// Unseal recovers the original chunk from a sealed replica.
func Unseal(sealed []byte, provider simnet.NodeID, replica int) []byte {
	return Seal(sealed, provider, replica)
}

// sealStream expands a (provider, replica) seed into an n-byte keystream
// via HMAC in counter mode (HKDF caps output at 8160 bytes; chunks can be
// larger).
func sealStream(n int, provider simnet.NodeID, replica int) []byte {
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[:8], uint64(provider))
	binary.BigEndian.PutUint64(seed[8:], uint64(replica))
	key := cryptoutil.HKDF(seed[:], nil, []byte("porep-seal"), 32)
	out := make([]byte, 0, n+32)
	var ctr [8]byte
	for i := uint64(0); len(out) < n; i++ {
		binary.BigEndian.PutUint64(ctr[:], i)
		out = append(out, cryptoutil.HMAC256(key, ctr[:])...)
	}
	return out[:n]
}

// SealedID returns the content address of the sealed replica, which the
// owner records for replication audits.
func SealedID(data []byte, provider simnet.NodeID, replica int) cryptoutil.Hash {
	return cryptoutil.SumHash(Seal(data, provider, replica))
}

// SealedRoot returns the proof Merkle root of the sealed replica.
func SealedRoot(data []byte, provider simnet.NodeID, replica int) cryptoutil.Hash {
	return chunkProofRoot(Seal(data, provider, replica))
}

// PutSealed uploads sealed replica `replica` of chunk (identified by its
// unsealed content address) to the holder.
func (c *Client) PutSealed(chunkID cryptoutil.Hash, data []byte, holder ProviderRef, replica int, done func(ok bool)) {
	sealed := Seal(data, holder.Node, replica)
	req := putSealedReq{ChunkID: chunkID, Replica: replica, Data: sealed}
	c.rpc.Call(holder.Node, methodPutSealed, req, len(sealed)+56, c.timeout, func(resp any, err error) {
		ok, _ := resp.(bool)
		done(err == nil && ok)
	})
}

// RepAudit challenges a holder for a random leaf of a sealed replica and
// verifies it against the expected sealed root within deadline.
func (c *Client) RepAudit(chunkID cryptoutil.Hash, sealedRoot cryptoutil.Hash, chunkLen int, holder ProviderRef, replica int, deadline time.Duration, done func(ok bool)) {
	rng := c.rpc.Node().Rand()
	leaf := rng.Intn(numProofLeaves(chunkLen))
	req := repChallengeReq{ChunkID: chunkID, Replica: replica, Leaf: leaf}
	c.rpc.Call(holder.Node, methodRepChallenge, req, 56, deadline, func(resp any, err error) {
		if err != nil {
			done(false)
			return
		}
		r, ok := resp.(challengeResp)
		done(ok && r.OK && cryptoutil.VerifyProof(sealedRoot, r.LeafData, r.Proof))
	})
}

// SpacetimeResult summarizes a proof-of-spacetime window: sequential
// replication audits spaced over simulated time. Filecoin's
// proof-of-spacetime (Table 2) is exactly this: "proofs of storage over
// time" — a provider must answer challenges continuously, not just once at
// deal start.
type SpacetimeResult struct {
	Passed int
	Total  int
	// Continuous reports whether every epoch passed — the property that
	// earns the full storage payment.
	Continuous bool
}

// SpacetimeAudit runs `epochs` replication audits `interval` apart against
// one sealed replica and reports the aggregate. done fires after the final
// epoch.
func (c *Client) SpacetimeAudit(chunkID, sealedRoot cryptoutil.Hash, chunkLen int, holder ProviderRef, replica, epochs int, interval, deadline time.Duration, done func(SpacetimeResult)) {
	if epochs <= 0 {
		done(SpacetimeResult{Continuous: true})
		return
	}
	res := SpacetimeResult{Total: epochs}
	var epoch func(i int)
	epoch = func(i int) {
		c.RepAudit(chunkID, sealedRoot, chunkLen, holder, replica, deadline, func(ok bool) {
			if ok {
				res.Passed++
			}
			if i+1 >= epochs {
				res.Continuous = res.Passed == res.Total
				done(res)
				return
			}
			c.rpc.Node().After(interval, func() { epoch(i + 1) })
		})
	}
	epoch(0)
}
