package storage

import (
	"container/list"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// LocalStore is a provider's tiered chunk store, after swarm's
// localstore/dbstore split: a bounded memory tier (pure cache, LRU) sits
// over a capacity-bounded simulated-disk tier that owns the bytes. Every
// chunk is stored once regardless of how many uploads reference it —
// Put is idempotent by content address and keeps a reference count — so
// overlapping uploads from different users deduplicate instead of
// duplicating, which is the economics the paper's §3.3 storage systems
// need to beat the feudal clouds on price.
//
// Eviction is two different things per tier. Memory-tier eviction is
// free: the entry stays on disk, only the cache slot is reclaimed.
// Disk-tier eviction is garbage collection: it is triggered only by
// capacity pressure, walks least-recently-used first, prefers chunks
// whose every reference has been released, and never touches a pinned
// chunk — pins are held by live storage contracts and by in-flight
// repairs reading the chunk as their restore source.
type LocalStore struct {
	cfg LocalStoreConfig

	entries  map[cryptoutil.Hash]*lsEntry
	memLRU   *list.List // front = least recently used
	diskLRU  *list.List
	memUsed  int64
	physUsed int64
	// logical counts every byte ever accepted by Put, duplicates
	// included; logical/physical is the dedup ratio.
	logical     int64
	gcReclaimed int64
	memHits     int64
	diskHits    int64

	// Optional observability (AttachMetrics); nil outside tiered worlds
	// so that stores in the historical configuration add no metric keys.
	obsMemHits     *obs.Counter
	obsDiskHits    *obs.Counter
	obsGCReclaimed *obs.Counter
	obsDedup       *obs.Gauge
}

// LocalStoreConfig sizes a tiered store.
type LocalStoreConfig struct {
	// Capacity bounds the disk tier in bytes.
	Capacity int64
	// MemCapacity bounds the memory tier in bytes; 0 disables it (every
	// read is a disk-tier read, as in the flat store this replaces).
	MemCapacity int64
	// GC enables capacity-triggered disk-tier garbage collection. When
	// false, a Put that would exceed Capacity is refused outright — the
	// historical provider behaviour.
	GC bool
	// GCLowWater is the occupancy fraction GC reclaims down to once
	// triggered (default 0.8). Collecting past the trigger point keeps
	// one oversized Put from re-triggering GC on every subsequent write.
	GCLowWater float64
}

// lsEntry is one stored chunk with its tier and lifecycle state.
type lsEntry struct {
	id       cryptoutil.Hash
	data     []byte
	refs     int // uploads referencing this chunk, minus releases
	pins     int // live contracts + in-flight repairs; never GC'd while > 0
	accesses int64
	memEl    *list.Element // non-nil iff resident in the memory tier
	diskEl   *list.Element
}

// NewLocalStore builds a tiered store.
func NewLocalStore(cfg LocalStoreConfig) *LocalStore {
	if cfg.GCLowWater <= 0 || cfg.GCLowWater > 1 {
		cfg.GCLowWater = 0.8
	}
	return &LocalStore{
		cfg:     cfg,
		entries: map[cryptoutil.Hash]*lsEntry{},
		memLRU:  list.New(),
		diskLRU: list.New(),
	}
}

// AttachMetrics wires the store's tier and dedup metrics into an obs
// registry (typically the provider node's). Only tiered worlds call this:
// the historical provider configuration must not grow new metric keys.
func (ls *LocalStore) AttachMetrics(reg *obs.Registry) {
	ls.obsMemHits = reg.Counter("storage.tier.mem.hits")
	ls.obsDiskHits = reg.Counter("storage.tier.disk.hits")
	ls.obsGCReclaimed = reg.Counter("storage.gc.reclaimed_bytes")
	ls.obsDedup = reg.Gauge("storage.dedup.ratio")
	ls.publishDedup()
}

func (ls *LocalStore) publishDedup() {
	if ls.obsDedup != nil {
		ls.obsDedup.Set(ls.DedupRatio())
	}
}

// Put stores data under its content address, idempotently: a chunk
// already present gains a reference instead of a second copy. Returns
// false only when the disk tier cannot fit the new chunk even after GC.
func (ls *LocalStore) Put(id cryptoutil.Hash, data []byte) bool {
	n := int64(len(data))
	if e, ok := ls.entries[id]; ok {
		// Dedup hit: the bytes are already on disk; the new upload only
		// adds a reference. Accepting costs nothing even at capacity.
		e.refs++
		ls.logical += n
		ls.touch(e)
		ls.publishDedup()
		return true
	}
	if ls.physUsed+n > ls.cfg.Capacity {
		if !ls.cfg.GC || !ls.gc(n) {
			return false
		}
	}
	e := &lsEntry{id: id, data: append([]byte{}, data...), refs: 1}
	e.diskEl = ls.diskLRU.PushBack(e)
	ls.entries[id] = e
	ls.physUsed += n
	ls.logical += n
	ls.admitMem(e)
	ls.publishDedup()
	return true
}

// Get returns the chunk bytes, counting which tier served it. A disk-tier
// read promotes the chunk into the memory tier.
func (ls *LocalStore) Get(id cryptoutil.Hash) ([]byte, bool) {
	e, ok := ls.entries[id]
	if !ok {
		return nil, false
	}
	e.accesses++
	if e.memEl != nil {
		ls.memHits++
		if ls.obsMemHits != nil {
			ls.obsMemHits.Inc()
		}
	} else {
		ls.diskHits++
		if ls.obsDiskHits != nil {
			ls.obsDiskHits.Inc()
		}
		ls.admitMem(e)
	}
	ls.touch(e)
	return e.data, true
}

// Peek reads the chunk without tier-hit accounting or memory-tier
// promotion — proof challenges use it so audits do not skew the cache
// statistics the experiments measure. It still refreshes LRU recency:
// a challenged chunk is a live chunk.
func (ls *LocalStore) Peek(id cryptoutil.Hash) ([]byte, bool) {
	e, ok := ls.entries[id]
	if !ok {
		return nil, false
	}
	e.accesses++
	ls.touch(e)
	return e.data, true
}

// Has reports presence without counting a tier hit.
func (ls *LocalStore) Has(id cryptoutil.Hash) bool {
	_, ok := ls.entries[id]
	return ok
}

// Pin marks the chunk exempt from GC (refcounted); contracts pin for
// their lifetime, repairs pin around the restore read.
func (ls *LocalStore) Pin(id cryptoutil.Hash) bool {
	e, ok := ls.entries[id]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin drops one pin.
func (ls *LocalStore) Unpin(id cryptoutil.Hash) {
	if e, ok := ls.entries[id]; ok && e.pins > 0 {
		e.pins--
	}
}

// Release drops one upload reference. The bytes stay resident — release
// marks the chunk collectable, it does not delete; reclaim happens lazily
// when capacity pressure triggers GC, so a re-upload before then is a
// free dedup hit.
func (ls *LocalStore) Release(id cryptoutil.Hash) {
	if e, ok := ls.entries[id]; ok && e.refs > 0 {
		e.refs--
	}
}

// touch moves the entry to the recently-used end of its tier lists.
func (ls *LocalStore) touch(e *lsEntry) {
	ls.diskLRU.MoveToBack(e.diskEl)
	if e.memEl != nil {
		ls.memLRU.MoveToBack(e.memEl)
	}
}

// admitMem caches the entry in the memory tier, evicting colder residents
// to fit. Chunks larger than the whole tier are served from disk only.
func (ls *LocalStore) admitMem(e *lsEntry) {
	n := int64(len(e.data))
	if ls.cfg.MemCapacity <= 0 || n > ls.cfg.MemCapacity || e.memEl != nil {
		return
	}
	for ls.memUsed+n > ls.cfg.MemCapacity {
		front := ls.memLRU.Front()
		victim := front.Value.(*lsEntry)
		ls.memLRU.Remove(front)
		victim.memEl = nil
		ls.memUsed -= int64(len(victim.data))
	}
	e.memEl = ls.memLRU.PushBack(e)
	ls.memUsed += n
}

// gc reclaims disk-tier space for an incoming chunk of `need` bytes,
// targeting GCLowWater occupancy so one collection buys headroom for many
// writes. Two LRU passes: released chunks (refs == 0) first, then
// still-referenced ones — evicting those sacrifices redundancy the
// owner's repair loop must restore, which is the measured cost of running
// close to capacity. Pinned chunks are never evicted by either pass.
// Returns whether the incoming chunk now fits.
func (ls *LocalStore) gc(need int64) bool {
	if need > ls.cfg.Capacity {
		return false // no amount of eviction fits it; don't wipe the store
	}
	target := int64(ls.cfg.GCLowWater * float64(ls.cfg.Capacity))
	if target > ls.cfg.Capacity-need {
		target = ls.cfg.Capacity - need
	}
	ls.evictLRU(target, true)
	if ls.physUsed > target {
		ls.evictLRU(target, false)
	}
	return ls.physUsed+need <= ls.cfg.Capacity
}

// evictLRU walks the disk tier cold-to-hot evicting eligible entries
// until physical occupancy reaches target. releasedOnly restricts
// eligibility to refs == 0 entries.
func (ls *LocalStore) evictLRU(target int64, releasedOnly bool) {
	for el := ls.diskLRU.Front(); el != nil && ls.physUsed > target; {
		next := el.Next()
		e := el.Value.(*lsEntry)
		if e.pins == 0 && (!releasedOnly || e.refs == 0) {
			ls.evict(e)
		}
		el = next
	}
}

// evict removes an entry from both tiers and counts the reclaim.
func (ls *LocalStore) evict(e *lsEntry) {
	n := int64(len(e.data))
	ls.diskLRU.Remove(e.diskEl)
	if e.memEl != nil {
		ls.memLRU.Remove(e.memEl)
		ls.memUsed -= n
	}
	delete(ls.entries, e.id)
	ls.physUsed -= n
	ls.gcReclaimed += n
	if ls.obsGCReclaimed != nil {
		ls.obsGCReclaimed.Add(n)
	}
}

// PhysicalBytes is the disk-tier occupancy: every unique chunk once.
func (ls *LocalStore) PhysicalBytes() int64 { return ls.physUsed }

// LogicalBytes is the byte volume of every accepted Put, duplicates
// included — what a flat store would have consumed.
func (ls *LocalStore) LogicalBytes() int64 { return ls.logical }

// MemBytes is the memory-tier occupancy.
func (ls *LocalStore) MemBytes() int64 { return ls.memUsed }

// DedupRatio is logical over physical bytes (1.0 when nothing overlaps;
// also 1.0 for an empty store).
func (ls *LocalStore) DedupRatio() float64 {
	if ls.physUsed == 0 {
		return 1
	}
	return float64(ls.logical) / float64(ls.physUsed)
}

// TierHits returns how many Gets each tier has served.
func (ls *LocalStore) TierHits() (mem, disk int64) { return ls.memHits, ls.diskHits }

// GCReclaimedBytes is the total disk-tier bytes reclaimed by GC.
func (ls *LocalStore) GCReclaimedBytes() int64 { return ls.gcReclaimed }

// Len is the number of unique chunks resident on disk.
func (ls *LocalStore) Len() int { return len(ls.entries) }

// Pinned reports whether the chunk is currently pin-protected.
func (ls *LocalStore) Pinned(id cryptoutil.Hash) bool {
	e, ok := ls.entries[id]
	return ok && e.pins > 0
}

// Accesses returns the chunk's access count (test/stats introspection).
func (ls *LocalStore) Accesses(id cryptoutil.Hash) int64 {
	if e, ok := ls.entries[id]; ok {
		return e.accesses
	}
	return 0
}
