package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// storageConformanceRun uploads a file before the scenario starts, drives
// the provider fleet through the fault window, and checks post-recovery
// health: audits must pass and the download must round-trip. Returns
// (auditPassRatio, downloadOK).
func storageConformanceRun(t testing.TB, seed int64, sc fault.Scenario) (float64, bool) {
	t.Helper()
	const horizon = 30 * time.Minute
	nw, client, providers := storageWorld(t, seed, 6, 1<<20)
	refs := make([]ProviderRef, len(providers))
	eligible := make([]simnet.NodeID, len(providers))
	for i, p := range providers {
		refs[i] = p.Ref()
		eligible[i] = p.Node().ID()
	}

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var (
		manifest  *Manifest
		placement *Placement
	)
	client.Upload(data, 512, refs, 3, func(m *Manifest, pl *Placement, err error) {
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		t.Fatal("upload did not complete in the setup window")
	}

	// The client is the anchor; every provider is fault-eligible. The
	// scenario clock starts after the upload has settled.
	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	nw.Run(start + horizon)

	// Post-recovery: all providers are back up, so every challenge must be
	// answered from intact storage.
	var report *AuditReport
	client.Audit(manifest, placement, 10*time.Second, func(r *AuditReport) { report = r })
	nw.Run(nw.Now() + time.Minute)
	if report == nil || len(report.Results) == 0 {
		t.Fatal("audit did not complete")
	}

	var got []byte
	var downloadErr error
	client.Download(manifest, placement, func(b []byte, err error) { got, downloadErr = b, err })
	nw.Run(nw.Now() + time.Minute)

	ratio := float64(report.Passed()) / float64(len(report.Results))
	ok := downloadErr == nil && bytes.Equal(got, data)
	return ratio, ok
}

// TestStorageRecoveryConformance: after the fault window closes, audits
// must pass in full and the original bytes must still be downloadable —
// crashes and partitions must not silently lose replicated chunks.
func TestStorageRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ratio, ok := storageConformanceRun(t, 405, sc)
			if ratio < 1.0 {
				t.Errorf("audit pass ratio %.3f after recovery window, want 1.0", ratio)
			}
			if !ok {
				t.Error("post-recovery download failed or returned wrong bytes")
			}
		})
	}
}

// TestStorageConformanceDeterministic: the audit outcome is a pure function
// of the seed.
func TestStorageConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("rolling-churn")
	a1, ok1 := storageConformanceRun(t, 55, sc)
	a2, ok2 := storageConformanceRun(t, 55, sc)
	if a1 != a2 || ok1 != ok2 {
		t.Errorf("same seed diverged: (%v,%v) vs (%v,%v)", a1, ok1, a2, ok2)
	}
}
