package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/storage/chunker"
)

// storageConformanceRun uploads a file before the scenario starts, drives
// the provider fleet through the fault window, and checks post-recovery
// health: audits must pass and the download must round-trip. Returns
// (auditPassRatio, downloadOK).
func storageConformanceRun(t testing.TB, seed int64, sc fault.Scenario) (float64, bool) {
	t.Helper()
	const horizon = 30 * time.Minute
	nw, client, providers := storageWorld(t, seed, 6, 1<<20)
	refs := make([]ProviderRef, len(providers))
	eligible := make([]simnet.NodeID, len(providers))
	for i, p := range providers {
		refs[i] = p.Ref()
		eligible[i] = p.Node().ID()
	}

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var (
		manifest  *Manifest
		placement *Placement
	)
	client.Upload(data, 512, refs, 3, func(m *Manifest, pl *Placement, err error) {
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		t.Fatal("upload did not complete in the setup window")
	}

	// The client is the anchor; every provider is fault-eligible. The
	// scenario clock starts after the upload has settled.
	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	nw.Run(start + horizon)

	// Post-recovery: all providers are back up, so every challenge must be
	// answered from intact storage.
	var report *AuditReport
	client.Audit(manifest, placement, 10*time.Second, func(r *AuditReport) { report = r })
	nw.Run(nw.Now() + time.Minute)
	if report == nil || len(report.Results) == 0 {
		t.Fatal("audit did not complete")
	}

	var got []byte
	var downloadErr error
	client.Download(manifest, placement, func(b []byte, err error) { got, downloadErr = b, err })
	nw.Run(nw.Now() + time.Minute)

	ratio := float64(report.Passed()) / float64(len(report.Results))
	ok := downloadErr == nil && bytes.Equal(got, data)
	return ratio, ok
}

// TestStorageRecoveryConformance: after the fault window closes, audits
// must pass in full and the original bytes must still be downloadable —
// crashes and partitions must not silently lose replicated chunks.
func TestStorageRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ratio, ok := storageConformanceRun(t, 405, sc)
			if ratio < 1.0 {
				t.Errorf("audit pass ratio %.3f after recovery window, want 1.0", ratio)
			}
			if !ok {
				t.Error("post-recovery download failed or returned wrong bytes")
			}
		})
	}
}

// TestStorageConformanceDeterministic: the audit outcome is a pure function
// of the seed.
func TestStorageConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("rolling-churn")
	a1, ok1 := storageConformanceRun(t, 55, sc)
	a2, ok2 := storageConformanceRun(t, 55, sc)
	if a1 != a2 || ok1 != ok2 {
		t.Errorf("same seed diverged: (%v,%v) vs (%v,%v)", a1, ok1, a2, ok2)
	}
}

// storageMidFaultRun measures availability during the fault window: a
// resilient client downloads the pre-uploaded object at a fixed cadence
// while providers crash, partition, and degrade, and a probe counts as
// available iff the full object round-trips within the 10s SLA.
func storageMidFaultRun(t testing.TB, seed int64, sc fault.Scenario, rcfg resil.Config) float64 {
	t.Helper()
	const (
		nProviders = 6
		nProbes    = 8
		horizon    = 30 * time.Minute
		sla        = 10 * time.Second
	)
	nw := simnet.New(seed)
	client := NewClientWith(nw.AddNode(), 30*time.Second, rcfg)
	providers := make([]*Provider, nProviders)
	refs := make([]ProviderRef, nProviders)
	eligible := make([]simnet.NodeID, nProviders)
	for i := range providers {
		providers[i] = NewProvider(nw.AddNode(), 1<<20, Honest)
		refs[i] = providers[i].Ref()
		eligible[i] = providers[i].Node().ID()
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var manifest *Manifest
	var placement *Placement
	client.Upload(data, 512, refs, 3, func(m *Manifest, pl *Placement, err error) {
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		t.Fatal("upload did not complete in the setup window")
	}

	start := nw.Now()
	plan := sc.Build(seed, eligible, horizon)
	plan.ApplyAt(nw, start)
	ws, we := plan.Start(), plan.End()
	if we <= ws { // clean plan: probe the whole horizon
		ws, we = 0, horizon
	}

	ok, total := 0, 0
	for i := 0; i < nProbes; i++ {
		total++
		nw.Schedule(start+ws+time.Duration(i)*(we-ws)/nProbes, func() {
			launched := nw.Now()
			client.Download(manifest, placement, func(b []byte, err error) {
				if err == nil && bytes.Equal(b, data) && nw.Now()-launched <= sla {
					ok++
				}
			})
		})
	}
	nw.Run(start + horizon)
	return float64(ok) / float64(total)
}

// storageTieredCDCRun is storageConformanceRun on the tiered
// configuration: providers run a memory tier over GC-enabled disk, the
// upload is content-defined, and the client pins its repair sources.
func storageTieredCDCRun(t testing.TB, seed int64, sc fault.Scenario) (float64, bool) {
	t.Helper()
	const horizon = 30 * time.Minute
	nw := simnet.New(seed)
	client := NewClient(nw.AddNode(), 30*time.Second)
	client.EnableRepairPinning()
	providers := make([]*Provider, 6)
	refs := make([]ProviderRef, len(providers))
	eligible := make([]simnet.NodeID, len(providers))
	for i := range providers {
		providers[i] = NewProviderWith(nw.AddNode(), ProviderConfig{
			Capacity:    1 << 20,
			MemCapacity: 4 << 10, // smaller than the object: downloads cross tiers
			GC:          true,
			Metrics:     true,
		})
		refs[i] = providers[i].Ref()
		eligible[i] = providers[i].Node().ID()
	}

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	ck, err := chunker.New(chunker.Defaults(512))
	if err != nil {
		t.Fatal(err)
	}
	var (
		manifest  *Manifest
		placement *Placement
	)
	client.UploadCDC(data, ck, refs, 3, func(m *Manifest, pl *Placement, err error) {
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		t.Fatal("upload did not complete in the setup window")
	}
	if len(manifest.ChunkLens) != len(manifest.Chunks) {
		t.Fatalf("CDC manifest has %d chunk lengths for %d chunks", len(manifest.ChunkLens), len(manifest.Chunks))
	}

	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	nw.Run(start + horizon)

	var report *AuditReport
	client.Audit(manifest, placement, 10*time.Second, func(r *AuditReport) { report = r })
	nw.Run(nw.Now() + time.Minute)
	if report == nil || len(report.Results) == 0 {
		t.Fatal("audit did not complete")
	}

	var got []byte
	var downloadErr error
	client.Download(manifest, placement, func(b []byte, err error) { got, downloadErr = b, err })
	nw.Run(nw.Now() + time.Minute)

	ratio := float64(report.Passed()) / float64(len(report.Results))
	ok := downloadErr == nil && bytes.Equal(got, data)
	return ratio, ok
}

// TestStorageTieredCDCConformance: the fault battery holds on the tiered
// store with content-defined uploads — variable-length chunks audit and
// download exactly like fixed ones, through crashes, corruption, and
// churn.
func TestStorageTieredCDCConformance(t *testing.T) {
	for _, name := range []string{"corrupt-10pct", "rolling-churn"} {
		sc, ok := fault.ByName(name)
		if !ok {
			t.Fatalf("scenario %s not found", name)
		}
		t.Run(name, func(t *testing.T) {
			ratio, ok := storageTieredCDCRun(t, 417, sc)
			if ratio < 1.0 {
				t.Errorf("audit pass ratio %.3f after recovery window, want 1.0", ratio)
			}
			if !ok {
				t.Error("post-recovery download failed or returned wrong bytes")
			}
		})
	}
}

// TestGCNeverEvictsRepairSource: the regression the repair-pinning RPCs
// exist to prevent. A repair's restore source — here the last surviving
// copy of every chunk — sits on a GC-enabled provider; the moment the
// repair's pins land, the test floods that provider's store with enough
// unique chunks to trigger collection repeatedly. GC must reclaim the
// filler pressure yet never touch the pinned sources, the repair must
// restore full redundancy from them, and the pins must be gone once it
// finishes.
func TestGCNeverEvictsRepairSource(t *testing.T) {
	nw := simnet.New(419)
	client := NewClient(nw.AddNode(), 30*time.Second)
	client.EnableRepairPinning()
	mk := func() *Provider {
		return NewProviderWith(nw.AddNode(), ProviderConfig{Capacity: 16 << 10, GC: true})
	}
	src, dead, fresh := mk(), mk(), mk()

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 17)
	}
	var manifest *Manifest
	var placement *Placement
	client.Upload(data, 512, []ProviderRef{src.Ref(), dead.Ref()}, 2, func(m *Manifest, pl *Placement, err error) {
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		t.Fatal("upload did not complete")
	}

	// Lose one replica of everything; the audit prunes the dead holder so
	// src holds the only surviving copies.
	dead.Node().Crash()
	client.Audit(manifest, placement, 5*time.Second, func(r *AuditReport) {
		for _, res := range r.Results {
			if !res.OK {
				placement.Remove(manifest.Chunks[res.ChunkIndex], res.Holder)
			}
		}
	})
	nw.Run(nw.Now() + time.Minute)
	for _, id := range manifest.Chunks {
		if placement.Count(id) != 1 {
			t.Fatalf("chunk holder count %d after audit prune, want 1", placement.Count(id))
		}
	}

	restored := -1
	client.Repair(manifest, placement, []ProviderRef{src.Ref(), fresh.Ref()}, func(n int, err error) {
		if err != nil {
			t.Errorf("repair: %v", err)
		}
		restored = n
	})
	// The GC storm: poll until the repair's pins have landed on src, then
	// slam its store with unique filler until collection has provably run
	// — the pinned sources must all survive it.
	stormed := false
	var poll func()
	poll = func() {
		if restored >= 0 {
			return // repair finished before the pins were observed — rerun logic below fails the test
		}
		if !src.Store().Pinned(manifest.Chunks[0]) {
			nw.After(time.Millisecond, poll)
			return
		}
		before := src.Store().GCReclaimedBytes()
		for i := 0; i < 64; i++ {
			filler := make([]byte, 512)
			nw.Rand().Read(filler)
			src.Store().Put(cryptoutil.SumHash(filler), filler)
		}
		if src.Store().GCReclaimedBytes() == before {
			t.Error("filler storm did not trigger GC — the test applied no pressure")
		}
		for ci, id := range manifest.Chunks {
			if !src.Store().Has(id) {
				t.Errorf("chunk %d: GC evicted the pinned repair source", ci)
			}
		}
		stormed = true
	}
	nw.After(0, poll)
	nw.Run(nw.Now() + time.Minute)

	if !stormed {
		t.Fatal("repair completed before its pins were observed; storm never ran")
	}
	if restored != len(manifest.Chunks) {
		t.Fatalf("repair restored %d chunks, want %d", restored, len(manifest.Chunks))
	}
	for ci, id := range manifest.Chunks {
		if src.Store().Pinned(id) {
			t.Errorf("chunk %d still pinned on src after repair finished", ci)
		}
		if !fresh.HasChunk(id) {
			t.Errorf("chunk %d not re-replicated onto the fresh provider", ci)
		}
	}
	var got []byte
	var gotErr error
	client.Download(manifest, placement, func(b []byte, err error) { got, gotErr = b, err })
	nw.Run(nw.Now() + time.Minute)
	if gotErr != nil || !bytes.Equal(got, data) {
		t.Error("post-repair download failed or returned wrong bytes")
	}
}

// TestStorageMidFaultAvailability: with the resilience layer on, a
// 3-replica object must stay downloadable within the SLA at the
// per-scenario floor while the provider fleet is actively under fault —
// holder failover plus transport retries are the mechanisms under test.
func TestStorageMidFaultAvailability(t *testing.T) {
	floors := map[string]float64{
		"clean":           1.0,
		"lossy-edge":      0.75,
		"flash-partition": 0.5,
		"rolling-churn":   0.5,
		"corrupt-10pct":   0.75,
	}
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := storageMidFaultRun(t, 408, sc, resil.Defaults())
			if floor := floors[sc.Name]; got < floor {
				t.Errorf("mid-fault download availability %.2f below floor %.2f", got, floor)
			}
			t.Logf("mid-fault availability %.2f", got)
		})
	}
}
