package chain

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// buildFundedChain mines a few blocks containing a known transaction.
func buildFundedChain(t *testing.T) (*Chain, *Tx, Config) {
	t.Helper()
	kp := testKey(t, 1)
	cfg := Config{
		InitialDifficulty: 16,
		Subsidy:           50,
		GenesisAlloc:      map[Address]uint64{kp.Fingerprint(): 1000},
	}
	c := NewChain(cfg)
	tx := &Tx{To: Address{9}, Amount: 5, Fee: 1, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	ts := time.Second
	b, err := c.NewBlock(c.HeadHash(), []*Tx{tx}, ts, Address{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ts += time.Second
		b, err := c.NewBlock(c.HeadHash(), nil, ts, Address{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	return c, tx, cfg
}

func TestSPVProveAndVerify(t *testing.T) {
	c, tx, cfg := buildFundedChain(t)
	proof, err := c.ProveTx(tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	hc := NewHeaderChain(cfg)
	if added := hc.Sync(c); added != 4 {
		t.Fatalf("synced %d headers, want 4", added)
	}
	if hc.Height() != c.Height() {
		t.Fatalf("light height %d != full height %d", hc.Height(), c.Height())
	}
	conf, err := hc.VerifyTx(proof)
	if err != nil {
		t.Fatal(err)
	}
	if conf != 4 {
		t.Errorf("confirmations = %d, want 4", conf)
	}
	// Light client stores far less than the full ledger.
	if hc.HeaderBytes() >= c.TotalBytes() {
		t.Errorf("light client (%d B) should be smaller than ledger (%d B)", hc.HeaderBytes(), c.TotalBytes())
	}
}

func TestSPVRejectsForgedProofs(t *testing.T) {
	c, tx, cfg := buildFundedChain(t)
	proof, err := c.ProveTx(tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	hc := NewHeaderChain(cfg)
	hc.Sync(c)

	// Tampered transaction (amount changed): signature check fails.
	bad := *proof
	badTx := *tx
	badTx.Amount = 999
	bad.Tx = &badTx
	if _, err := hc.VerifyTx(&bad); err == nil {
		t.Error("tampered tx accepted")
	}
	// Valid tx but wrong block: merkle check fails.
	other := *proof
	kp := testKey(t, 2)
	foreign := &Tx{To: Address{1}, Amount: 1, Nonce: 0, Kind: KindPayment}
	foreign.Sign(kp)
	other.Tx = foreign
	if _, err := hc.VerifyTx(&other); err == nil {
		t.Error("foreign tx accepted under stolen proof")
	}
	// Unknown block hash.
	ghost := *proof
	ghost.BlockHash = cryptoutil.SumHash([]byte("ghost"))
	if _, err := hc.VerifyTx(&ghost); err == nil {
		t.Error("unknown block accepted")
	}
	// Nil proof.
	if _, err := hc.VerifyTx(nil); err == nil {
		t.Error("nil proof accepted")
	}
}

func TestSPVHeaderValidation(t *testing.T) {
	_, _, cfg := buildFundedChain(t)
	hc := NewHeaderChain(cfg)
	// Unknown parent.
	orphan := Header{Prev: cryptoutil.SumHash([]byte("nope")), Height: 3, Difficulty: 16}
	orphan.Grind()
	if err := hc.AddHeader(orphan); err != ErrHeaderUnknownParent {
		t.Errorf("got %v, want ErrHeaderUnknownParent", err)
	}
	// Bad PoW: find a nonce that misses.
	_, gh := hc.Head()
	bad := Header{Prev: gh, Height: 1, Difficulty: 1 << 30}
	for bad.MeetsTarget() {
		bad.Nonce++
	}
	if err := hc.AddHeader(bad); err != ErrHeaderBadPoW {
		t.Errorf("got %v, want ErrHeaderBadPoW", err)
	}
	// Bad height.
	wrongHeight := Header{Prev: gh, Height: 7, Difficulty: 1}
	wrongHeight.Grind()
	if err := hc.AddHeader(wrongHeight); err == nil {
		t.Error("bad height accepted")
	}
}

func TestSPVFollowsHeaviestBranch(t *testing.T) {
	c, _, cfg := buildFundedChain(t)
	hc := NewHeaderChain(cfg)
	hc.Sync(c)
	_, oldHead := hc.Head()

	// Extend the full chain; re-sync picks up the new head.
	ts := time.Duration(c.Head().Header.Time) + time.Second
	b, err := c.NewBlock(c.HeadHash(), nil, ts, Address{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if added := hc.Sync(c); added != 1 {
		t.Fatalf("incremental sync added %d", added)
	}
	_, newHead := hc.Head()
	if newHead == oldHead || newHead != c.HeadHash() {
		t.Error("light client did not follow the extended chain")
	}
	// Duplicate sync is a no-op.
	if added := hc.Sync(c); added != 0 {
		t.Errorf("duplicate sync added %d", added)
	}
	if !hc.HasHeader(newHead) || hc.NumHeaders() != c.NumBlocks() {
		t.Error("header bookkeeping wrong")
	}
}

func TestSPVConfirmationsOffBranch(t *testing.T) {
	cfg := Config{InitialDifficulty: 16}
	c := NewChain(cfg)
	genesis := c.HeadHash()
	a1, _ := c.NewBlock(genesis, nil, time.Second, Address{1})
	if err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	b1, _ := c.NewBlock(genesis, nil, time.Second, Address{2})
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2, _ := c.NewBlock(b1.Hash(), nil, 2*time.Second, Address{2})
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}

	hc := NewHeaderChain(cfg)
	if err := hc.AddHeader(a1.Header); err != nil {
		t.Fatal(err)
	}
	if err := hc.AddHeader(b1.Header); err != nil {
		t.Fatal(err)
	}
	if err := hc.AddHeader(b2.Header); err != nil {
		t.Fatal(err)
	}
	if got := hc.Confirmations(a1.Hash()); got != 0 {
		t.Errorf("stale-branch confirmations = %d, want 0", got)
	}
	if got := hc.Confirmations(b1.Hash()); got != 2 {
		t.Errorf("confirmations(b1) = %d, want 2", got)
	}
}

func TestProveTxNotFound(t *testing.T) {
	c, _, _ := buildFundedChain(t)
	if _, err := c.ProveTx(cryptoutil.SumHash([]byte("missing"))); err == nil {
		t.Error("proof for missing tx should fail")
	}
}

func TestCompactFreesStatesAndBlocksDeepForks(t *testing.T) {
	c := testChain(t, nil)
	var mid *Block
	for i := 0; i < 9; i++ {
		b := extend(t, c, nil, Address{1})
		if i == 3 {
			mid = b
		}
	}
	if c.StatesHeld() != 10 { // genesis + 9
		t.Fatalf("states = %d", c.StatesHeld())
	}
	freed := c.Compact(3)
	if freed == 0 || c.StatesHeld() != 10-freed {
		t.Fatalf("freed=%d held=%d", freed, c.StatesHeld())
	}
	// Head state must survive and stay usable.
	if c.State() == nil {
		t.Fatal("head state lost")
	}
	// Extending the head still works.
	extend(t, c, nil, Address{1})
	// A fork below the checkpoint is rejected with the dedicated error.
	deep, err := c.NewBlock(mid.Hash(), nil, time.Hour, Address{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(deep); err != ErrTooDeepFork {
		t.Errorf("deep fork error = %v, want ErrTooDeepFork", err)
	}
	// Shallow forks (within the kept window) still reorg normally.
	parent := c.BestBlocks()[int(c.Height())-1] // one below head
	s1, err := c.NewBlock(parent.Hash(), nil, time.Hour, Address{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(s1); err != nil {
		t.Fatalf("shallow fork rejected: %v", err)
	}
	// Compacting an already short chain is a no-op.
	short := testChain(t, nil)
	if short.Compact(100) != 0 {
		t.Error("short-chain compact should free nothing")
	}
}
