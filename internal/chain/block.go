package chain

import (
	"encoding/binary"
	"math/big"

	"repro/internal/cryptoutil"
)

// Header is the proof-of-work-committed part of a block.
type Header struct {
	Prev       cryptoutil.Hash
	MerkleRoot cryptoutil.Hash
	Height     uint64
	// Time is the block's virtual timestamp in nanoseconds of simulation
	// time (simnet durations cast to int64).
	Time int64
	// Difficulty is the expected number of hash evaluations to find a
	// valid nonce; the target is 2²⁵⁶ / Difficulty.
	Difficulty uint64
	Nonce      uint64
}

func (h *Header) encode() []byte {
	buf := make([]byte, 0, 32+32+8*4)
	buf = append(buf, h.Prev[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	var scratch [8]byte
	for _, v := range []uint64{h.Height, uint64(h.Time), h.Difficulty, h.Nonce} {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	return buf
}

// Hash returns the block identifier: the SHA-256 of the header encoding.
func (h *Header) Hash() cryptoutil.Hash { return cryptoutil.SumHash(h.encode()) }

// Block is a header plus its transactions; the first transaction must be
// the coinbase.
type Block struct {
	Header Header
	Txs    []*Tx
}

// Hash returns the block's identifier.
func (b *Block) Hash() cryptoutil.Hash { return b.Header.Hash() }

// WireSize returns the simulated size of the block in bytes: header plus
// all transactions. Chain.TotalBytes sums this to track the paper's
// "endless ledger" growth.
func (b *Block) WireSize() int {
	size := len(b.Header.encode())
	for _, tx := range b.Txs {
		size += tx.WireSize()
	}
	return size
}

// txMerkleRoot computes the Merkle root over the block's transaction IDs.
func txMerkleRoot(txs []*Tx) cryptoutil.Hash {
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		id := tx.ID()
		leaves[i] = id[:]
	}
	return cryptoutil.MerkleRoot(leaves)
}

var maxHashValue = new(big.Int).Lsh(big.NewInt(1), 256)

// workTarget returns the highest hash value that satisfies difficulty d.
func workTarget(d uint64) *big.Int {
	if d == 0 {
		d = 1
	}
	return new(big.Int).Div(maxHashValue, new(big.Int).SetUint64(d))
}

// MeetsTarget reports whether the header's hash satisfies its difficulty.
func (h *Header) MeetsTarget() bool {
	hash := h.Hash()
	v := new(big.Int).SetBytes(hash[:])
	return v.Cmp(workTarget(h.Difficulty)) <= 0
}

// Grind searches nonces (starting from the current one) until the header
// meets its target, mutating the header in place. With the modest
// difficulties simulations use this is a few thousand hash evaluations.
func (h *Header) Grind() {
	for !h.MeetsTarget() {
		h.Nonce++
	}
}

// Work returns the expected-hash contribution of a block at difficulty d,
// used for heaviest-chain fork choice.
func Work(d uint64) *big.Int { return new(big.Int).SetUint64(d) }
