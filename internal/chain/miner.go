package chain

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Wire message kinds used by miners and relay nodes.
const (
	MsgBlock    = "chain.block"    // payload *Block
	MsgTx       = "chain.tx"       // payload *Tx
	MsgGetBlock = "chain.getblock" // payload cryptoutil.Hash
)

// Miner is a simulated proof-of-work miner/full node. Each miner owns a
// Chain replica and a mempool, gossips blocks and transactions to its
// peers, and discovers blocks after exponentially distributed virtual time
// with mean difficulty/hashrate.
//
// A Miner can also model the attacker in the paper's "51 % attack": pin the
// mining parent with SetMiningTarget, withhold found blocks with
// SetWithhold, and publish the private branch with Release (experiment X2).
type Miner struct {
	node  *simnet.Node
	chain *Chain
	pool  *Mempool
	// Hashrate is in expected hash evaluations per second of virtual time.
	hashrate float64
	address  Address
	peers    []simnet.NodeID

	withhold bool
	withheld []*Block
	// pinned, when non-zero, overrides the chain head as the mining parent.
	pinned cryptoutil.Hash

	// mineTimer is the pending block-discovery event; rescheduling mining
	// cancels it outright instead of leaving a dead event in the queue.
	mineTimer   simnet.Timer
	blocksFound int
	orphans     map[cryptoutil.Hash][]*Block // parent hash -> waiting blocks
	started     bool
	// onAccepted observers fire whenever a block enters this miner's chain
	// (mined==true for self-mined blocks, false for received ones).
	// Strategy controllers (e.g. selfish mining) hook here.
	onAccepted []func(b *Block, mined bool)
}

// NewMiner attaches a miner to a simnet node. The chain must be a fresh
// replica (each miner needs its own); address receives coinbase rewards.
func NewMiner(node *simnet.Node, c *Chain, address Address, hashrate float64) *Miner {
	m := &Miner{
		node:     node,
		chain:    c,
		pool:     NewMempool(),
		hashrate: hashrate,
		address:  address,
		orphans:  map[cryptoutil.Hash][]*Block{},
	}
	c.SetObs(node.Obs())
	node.Handle(MsgBlock, m.onBlock)
	node.Handle(MsgTx, m.onTx)
	node.Handle(MsgGetBlock, m.onGetBlock)
	node.OnUp(func() {
		if m.started {
			m.scheduleMine()
		}
	})
	node.OnDown(func() { m.mineTimer.Cancel() })
	c.OnHead(func(b *Block) {
		m.pool.RemoveMined(b)
		if m.started && m.pinned.IsZero() {
			m.scheduleMine() // head moved: restart on the new tip
		}
	})
	return m
}

// Chain returns the miner's chain replica.
func (m *Miner) Chain() *Chain { return m.chain }

// Node returns the underlying simulated node.
func (m *Miner) Node() *simnet.Node { return m.node }

// Pool returns the miner's mempool.
func (m *Miner) Pool() *Mempool { return m.pool }

// Address returns the coinbase payout address.
func (m *Miner) Address() Address { return m.address }

// BlocksFound returns how many blocks this miner has discovered.
func (m *Miner) BlocksFound() int { return m.blocksFound }

// SetPeers sets the gossip peer set.
func (m *Miner) SetPeers(peers []simnet.NodeID) { m.peers = peers }

// SetHashrate changes the miner's hashrate (expected hash evaluations per
// second of virtual time); takes effect at the next mining (re)schedule.
func (m *Miner) SetHashrate(h float64) {
	m.hashrate = h
	if m.started {
		m.scheduleMine()
	}
}

// SetWithhold toggles block withholding (selfish/51 % attacker mode).
func (m *Miner) SetWithhold(w bool) { m.withhold = w }

// Withheld returns the blocks found but not yet broadcast.
func (m *Miner) Withheld() []*Block { return m.withheld }

// OnBlockAccepted registers an observer invoked after any block joins this
// miner's chain replica; mined reports whether this miner produced it.
func (m *Miner) OnBlockAccepted(f func(b *Block, mined bool)) {
	m.onAccepted = append(m.onAccepted, f)
}

func (m *Miner) notifyAccepted(b *Block, mined bool) {
	for _, f := range m.onAccepted {
		f(b, mined)
	}
}

// SetMiningTarget pins the mining parent to h (attack mode). Pass the zero
// hash to resume following the chain head.
func (m *Miner) SetMiningTarget(h cryptoutil.Hash) {
	m.pinned = h
	if m.started {
		m.scheduleMine()
	}
}

// Start begins the mining process. Safe to call once; mining restarts
// automatically on head changes and node restarts.
func (m *Miner) Start() {
	if m.started {
		return
	}
	m.started = true
	m.scheduleMine()
}

// Stop halts mining (the in-flight discovery event is cancelled).
func (m *Miner) Stop() {
	m.started = false
	m.mineTimer.Cancel()
}

func (m *Miner) miningParent() cryptoutil.Hash {
	if !m.pinned.IsZero() {
		// Mine on the tip of the private branch: follow children of pinned
		// that we ourselves produced (withheld list), else pinned itself.
		if len(m.withheld) > 0 {
			return m.withheld[len(m.withheld)-1].Hash()
		}
		return m.pinned
	}
	return m.chain.HeadHash()
}

func (m *Miner) scheduleMine() {
	m.mineTimer.Cancel()
	if m.hashrate <= 0 || !m.started {
		return
	}
	parent := m.miningParent()
	difficulty := m.chain.NextDifficulty(parent)
	mean := float64(difficulty) / m.hashrate // seconds
	// The discovery delay draws from the miner's own RNG stream, so one
	// miner's luck is independent of every other node's event schedule.
	delay := time.Duration(m.node.Rand().ExpFloat64() * mean * float64(time.Second))
	if delay <= 0 {
		delay = time.Nanosecond
	}
	m.mineTimer = m.node.Network().AfterTimer(delay, func() {
		if !m.node.Up() || !m.started {
			return
		}
		m.mineOne(parent)
	})
}

func (m *Miner) mineOne(parent cryptoutil.Hash) {
	st := m.chain.StateAt(parent)
	if st == nil {
		m.scheduleMine()
		return
	}
	txs := m.pool.Select(st, m.chain.Config().MaxTxsPerBlock)
	b, err := m.chain.NewBlock(parent, txs, m.node.Now(), m.address)
	if err != nil {
		m.scheduleMine()
		return
	}
	if err := m.chain.AddBlock(b); err != nil {
		m.scheduleMine()
		return
	}
	m.blocksFound++
	if m.withhold {
		m.withheld = append(m.withheld, b)
	} else {
		m.broadcastBlock(b)
	}
	m.notifyAccepted(b, true)
	m.scheduleMine()
}

// Release broadcasts every withheld block, oldest first, and clears the
// withheld list. Used by the 51 % attack harness to publish the private
// branch.
func (m *Miner) Release() {
	for _, b := range m.withheld {
		m.broadcastBlock(b)
	}
	m.withheld = nil
}

func (m *Miner) broadcastBlock(b *Block) {
	for _, p := range m.peers {
		m.node.Send(p, MsgBlock, b, b.WireSize())
	}
}

// SubmitTx adds a transaction to the local pool and gossips it.
func (m *Miner) SubmitTx(tx *Tx) {
	if !m.pool.Add(tx) {
		return
	}
	for _, p := range m.peers {
		m.node.Send(p, MsgTx, tx, tx.WireSize())
	}
}

func (m *Miner) onTx(msg simnet.Message) {
	tx, ok := msg.Payload.(*Tx)
	if !ok {
		return
	}
	if !m.pool.Add(tx) {
		return // already known: stop the flood
	}
	for _, p := range m.peers {
		if p != msg.From {
			m.node.Send(p, MsgTx, tx, tx.WireSize())
		}
	}
}

func (m *Miner) onBlock(msg simnet.Message) {
	b, ok := msg.Payload.(*Block)
	if !ok {
		return
	}
	m.acceptBlock(b, msg.From)
}

func (m *Miner) acceptBlock(b *Block, from simnet.NodeID) {
	h := b.Hash()
	switch err := m.chain.AddBlock(b); err {
	case nil:
		// Relay to peers other than the sender, then connect any orphans
		// that were waiting on this block.
		for _, p := range m.peers {
			if p != from {
				m.node.Send(p, MsgBlock, b, b.WireSize())
			}
		}
		m.notifyAccepted(b, false)
		if kids, ok := m.orphans[h]; ok {
			delete(m.orphans, h)
			for _, kid := range kids {
				m.acceptBlock(kid, from)
			}
		}
	case ErrUnknownParent:
		m.orphans[b.Header.Prev] = append(m.orphans[b.Header.Prev], b)
		m.node.Send(from, MsgGetBlock, b.Header.Prev, 64)
	default:
		// Invalid or duplicate: drop silently.
	}
}

func (m *Miner) onGetBlock(msg simnet.Message) {
	h, ok := msg.Payload.(cryptoutil.Hash)
	if !ok {
		return
	}
	if b := m.chain.Block(h); b != nil {
		m.node.Send(msg.From, MsgBlock, b, b.WireSize())
	}
}
