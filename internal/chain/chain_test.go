package chain

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
)

func testKey(t testing.TB, seed int64) *cryptoutil.KeyPair {
	t.Helper()
	kp, err := cryptoutil.GenerateKeyPair(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func testChain(t testing.TB, alloc map[Address]uint64) *Chain {
	t.Helper()
	return NewChain(Config{
		InitialDifficulty: 16,
		TargetSpacing:     10 * time.Second,
		RetargetInterval:  10,
		Subsidy:           50,
		GenesisAlloc:      alloc,
	})
}

// extend mines a block of txs on the chain's current head.
func extend(t testing.TB, c *Chain, txs []*Tx, miner Address) *Block {
	t.Helper()
	ts := time.Duration(c.Head().Header.Time) + c.Config().TargetSpacing
	b, err := c.NewBlock(c.HeadHash(), txs, ts, miner)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTxSignAndVerify(t *testing.T) {
	kp := testKey(t, 1)
	to := testKey(t, 2).Fingerprint()
	tx := &Tx{To: to, Amount: 10, Fee: 1, Kind: KindPayment}
	tx.Sign(kp)
	if err := tx.CheckSig(); err != nil {
		t.Fatal(err)
	}
	tx.Amount = 11
	if err := tx.CheckSig(); err == nil {
		t.Error("tampered tx passed signature check")
	}
}

func TestTxWrongKeyRejected(t *testing.T) {
	kp, other := testKey(t, 1), testKey(t, 2)
	tx := &Tx{Amount: 1, Kind: KindPayment}
	tx.Sign(kp)
	tx.FromPub = other.Public
	if err := tx.CheckSig(); err == nil {
		t.Error("public key not matching address accepted")
	}
}

func TestTxIDDependsOnPayload(t *testing.T) {
	kp := testKey(t, 1)
	a := &Tx{Kind: KindAnchor, Payload: []byte("x")}
	a.Sign(kp)
	b := &Tx{Kind: KindAnchor, Payload: []byte("y")}
	b.Sign(kp)
	if a.ID() == b.ID() {
		t.Error("distinct payloads produced equal tx IDs")
	}
	if a.WireSize() <= 0 {
		t.Error("wire size should be positive")
	}
}

func TestCoinbaseUniquePerHeight(t *testing.T) {
	a := NewCoinbase(Address{1}, 50, 1)
	b := NewCoinbase(Address{1}, 50, 2)
	if a.ID() == b.ID() {
		t.Error("coinbases at different heights must differ")
	}
	if !a.IsCoinbase() {
		t.Error("coinbase not recognized")
	}
	if err := a.CheckSig(); err != nil {
		t.Errorf("coinbase should pass CheckSig: %v", err)
	}
}

func TestStateApplyAndErrors(t *testing.T) {
	kp := testKey(t, 1)
	addr := kp.Fingerprint()
	to := testKey(t, 2).Fingerprint()
	st := NewState(map[Address]uint64{addr: 100})

	tx := &Tx{To: to, Amount: 60, Fee: 5, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	if err := st.ApplyTx(tx); err != nil {
		t.Fatal(err)
	}
	if st.Balance(addr) != 35 || st.Balance(to) != 60 || st.Nonce(addr) != 1 {
		t.Errorf("state after apply: %+v", st)
	}

	// Replay (same nonce) must fail.
	if err := st.ApplyTx(tx); err == nil {
		t.Error("replayed tx accepted")
	}
	// Overdraft must fail.
	big := &Tx{To: to, Amount: 1000, Nonce: 1, Kind: KindPayment}
	big.Sign(kp)
	if err := st.ApplyTx(big); err == nil {
		t.Error("overdraft accepted")
	}
	// Overflow of amount+fee must fail.
	ovf := &Tx{To: to, Amount: ^uint64(0), Fee: 2, Nonce: 1, Kind: KindPayment}
	ovf.Sign(kp)
	if err := st.ApplyTx(ovf); err == nil {
		t.Error("amount+fee overflow accepted")
	}
}

func TestStateCloneIsolated(t *testing.T) {
	st := NewState(map[Address]uint64{{1}: 5})
	cl := st.Clone()
	cl.Balances[Address{1}] = 99
	if st.Balance(Address{1}) != 5 {
		t.Error("clone shares storage with original")
	}
}

func TestGenesisDeterministic(t *testing.T) {
	a := testChain(t, nil)
	b := testChain(t, nil)
	if a.Genesis() != b.Genesis() {
		t.Error("same config produced different genesis")
	}
	if a.Height() != 0 || a.Head() == nil {
		t.Error("fresh chain should be at genesis")
	}
}

func TestMineAndApplyBlocks(t *testing.T) {
	kp := testKey(t, 1)
	addr := kp.Fingerprint()
	to := testKey(t, 2).Fingerprint()
	c := testChain(t, map[Address]uint64{addr: 1000})
	miner := testKey(t, 3).Fingerprint()

	tx := &Tx{To: to, Amount: 100, Fee: 7, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	b := extend(t, c, []*Tx{tx}, miner)

	if c.Height() != 1 || c.HeadHash() != b.Hash() {
		t.Fatal("head not advanced")
	}
	st := c.State()
	if st.Balance(addr) != 893 || st.Balance(to) != 100 {
		t.Errorf("balances: %d / %d", st.Balance(addr), st.Balance(to))
	}
	if st.Balance(miner) != 57 { // subsidy 50 + fee 7
		t.Errorf("miner reward = %d, want 57", st.Balance(miner))
	}
	if c.TotalBytes() <= 0 {
		t.Error("ledger bytes not tracked")
	}
	gotTx, gotBlock := c.FindTx(tx.ID())
	if gotTx == nil || gotBlock.Hash() != b.Hash() {
		t.Error("FindTx failed")
	}
	if tx2, _ := c.FindTx(cryptoutil.SumHash([]byte("nope"))); tx2 != nil {
		t.Error("FindTx found a ghost")
	}
}

func TestBlockValidationRejections(t *testing.T) {
	c := testChain(t, nil)
	miner := Address{9}
	good, err := c.NewBlock(c.HeadHash(), nil, time.Second, miner)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(b *Block)
	}{
		{"bad height", func(b *Block) { b.Header.Height = 7 }},
		{"time backwards", func(b *Block) { b.Header.Time = -5 }},
		{"wrong difficulty", func(b *Block) { b.Header.Difficulty = 5 }},
		{"bad merkle root", func(b *Block) { b.Header.MerkleRoot = cryptoutil.Hash{1} }},
		{"no txs", func(b *Block) { b.Txs = nil; b.Header.MerkleRoot = txMerkleRoot(nil) }},
		{"wrong coinbase amount", func(b *Block) {
			b.Txs[0].Amount = 999
			b.Header.MerkleRoot = txMerkleRoot(b.Txs)
		}},
	}
	for _, tc := range cases {
		b := &Block{Header: good.Header, Txs: append([]*Tx{}, good.Txs...)}
		cb := *good.Txs[0]
		b.Txs[0] = &cb
		tc.mutate(b)
		b.Header.Grind()
		if err := c.AddBlock(b); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// PoW failure: find a nonce that misses the (tiny) target.
	b := &Block{Header: good.Header, Txs: good.Txs}
	for b.Header.MeetsTarget() {
		b.Header.Nonce++
	}
	if err := c.AddBlock(b); err == nil {
		t.Error("block without valid PoW accepted")
	}

	// Unknown parent.
	orphan := &Block{Header: Header{Prev: cryptoutil.Hash{0xAA}, Height: 5, Difficulty: 16}}
	if err := c.AddBlock(orphan); err != ErrUnknownParent {
		t.Errorf("orphan error = %v, want ErrUnknownParent", err)
	}

	// Duplicate.
	if err := c.AddBlock(good); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(good); err != ErrDuplicate {
		t.Errorf("duplicate error = %v, want ErrDuplicate", err)
	}
}

func TestPayloadCap(t *testing.T) {
	kp := testKey(t, 1)
	c := NewChain(Config{
		InitialDifficulty: 4,
		MaxPayloadBytes:   8,
		GenesisAlloc:      map[Address]uint64{kp.Fingerprint(): 100},
	})
	tx := &Tx{Kind: KindAnchor, Payload: make([]byte, 100), Nonce: 0}
	tx.Sign(kp)
	if _, err := c.NewBlock(c.HeadHash(), []*Tx{tx}, time.Second, Address{1}); err != nil {
		t.Fatal(err)
	}
	b, _ := c.NewBlock(c.HeadHash(), []*Tx{tx}, time.Second, Address{1})
	if err := c.AddBlock(b); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestForkChoiceAndReorg(t *testing.T) {
	c := testChain(t, nil)
	genesis := c.HeadHash()

	// Branch A: one block.
	a1, err := c.NewBlock(genesis, nil, time.Second, Address{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	if c.HeadHash() != a1.Hash() {
		t.Fatal("head should be a1")
	}

	// Branch B: two blocks from genesis → more work → reorg.
	b1, err := c.NewBlock(genesis, nil, 2*time.Second, Address{2})
	if err != nil {
		t.Fatal(err)
	}
	// b1 must differ from a1; different miner address guarantees that.
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if c.HeadHash() != a1.Hash() {
		t.Fatal("equal work should keep incumbent head")
	}
	b2, err := c.NewBlock(b1.Hash(), nil, 3*time.Second, Address{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if c.HeadHash() != b2.Hash() {
		t.Fatal("heavier branch did not win")
	}
	if c.Reorgs() != 1 {
		t.Errorf("reorgs = %d, want 1", c.Reorgs())
	}
	if c.IsOnBestChain(a1.Hash()) {
		t.Error("a1 should be off the best chain")
	}
	if !c.IsOnBestChain(b1.Hash()) {
		t.Error("b1 should be on the best chain")
	}
	if got := c.Confirmations(b1.Hash()); got != 2 {
		t.Errorf("confirmations(b1) = %d, want 2", got)
	}
	if got := c.Confirmations(a1.Hash()); got != 0 {
		t.Errorf("confirmations(a1) = %d, want 0", got)
	}
	best := c.BestBlocks()
	if len(best) != 3 || best[0].Header.Height != 0 || best[2].Hash() != b2.Hash() {
		t.Errorf("BestBlocks wrong: %d blocks", len(best))
	}
}

func TestReorgRevertsState(t *testing.T) {
	kp := testKey(t, 1)
	addr := kp.Fingerprint()
	c := testChain(t, map[Address]uint64{addr: 100})
	genesis := c.HeadHash()

	// Branch A includes a spend.
	tx := &Tx{To: Address{7}, Amount: 90, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	a1, _ := c.NewBlock(genesis, []*Tx{tx}, time.Second, Address{1})
	if err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	if c.State().Balance(addr) != 10 {
		t.Fatal("spend not applied")
	}
	// Branch B (heavier) does not include the spend: balance reverts.
	b1, _ := c.NewBlock(genesis, nil, time.Second, Address{2})
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2, _ := c.NewBlock(b1.Hash(), nil, 2*time.Second, Address{2})
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if c.State().Balance(addr) != 100 {
		t.Errorf("balance after reorg = %d, want 100 (double-spend window)", c.State().Balance(addr))
	}
}

func TestDifficultyRetarget(t *testing.T) {
	c := NewChain(Config{
		InitialDifficulty: 1000,
		TargetSpacing:     10 * time.Second,
		RetargetInterval:  5,
	})
	// Mine 5 blocks spaced 1s apart (10× too fast): difficulty should rise
	// by the clamp factor 4.
	ts := time.Second
	for i := 0; i < 5; i++ {
		b, err := c.NewBlock(c.HeadHash(), nil, ts, Address{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		ts += time.Second
	}
	next := c.NextDifficulty(c.HeadHash())
	if next != 4000 {
		t.Errorf("retargeted difficulty = %d, want 4000 (clamped 4x)", next)
	}
	// And slow blocks bring it back down (clamped at ¼).
	c2 := NewChain(Config{InitialDifficulty: 1000, TargetSpacing: time.Second, RetargetInterval: 5})
	ts = 0
	for i := 0; i < 5; i++ {
		ts += 100 * time.Second
		b, err := c2.NewBlock(c2.HeadHash(), nil, ts, Address{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if next := c2.NextDifficulty(c2.HeadHash()); next != 250 {
		t.Errorf("retargeted difficulty = %d, want 250 (clamped ¼)", next)
	}
}

func TestAncestors(t *testing.T) {
	c := testChain(t, nil)
	for i := 0; i < 5; i++ {
		extend(t, c, nil, Address{1})
	}
	anc := c.Ancestors(c.HeadHash(), 3)
	if len(anc) != 3 || anc[0] != c.HeadHash() {
		t.Errorf("ancestors = %d entries", len(anc))
	}
	all := c.Ancestors(c.HeadHash(), 100)
	if len(all) != 6 { // 5 blocks + genesis
		t.Errorf("full walk = %d entries, want 6", len(all))
	}
	if c.Ancestors(cryptoutil.Hash{0xFF}, 5) != nil {
		t.Error("unknown start should return nil")
	}
}

func TestMempoolFeeOrderingAndNonceSequence(t *testing.T) {
	kpA, kpB := testKey(t, 1), testKey(t, 2)
	st := NewState(map[Address]uint64{kpA.Fingerprint(): 1000, kpB.Fingerprint(): 1000})
	pool := NewMempool()

	// A sends a nonce sequence with mixed fees; B sends one high-fee tx.
	a0 := &Tx{To: Address{9}, Amount: 1, Fee: 1, Nonce: 0, Kind: KindPayment}
	a0.Sign(kpA)
	a1 := &Tx{To: Address{9}, Amount: 1, Fee: 50, Nonce: 1, Kind: KindPayment}
	a1.Sign(kpA)
	b0 := &Tx{To: Address{9}, Amount: 1, Fee: 10, Nonce: 0, Kind: KindPayment}
	b0.Sign(kpB)
	for _, tx := range []*Tx{a1, a0, b0} { // insertion order scrambled
		if !pool.Add(tx) {
			t.Fatal("add failed")
		}
	}
	if pool.Add(a0) {
		t.Error("duplicate add should report false")
	}
	if pool.Len() != 3 {
		t.Fatalf("len = %d", pool.Len())
	}

	sel := pool.Select(st, 10)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	// b0 (fee 10) must precede a0 (fee 1); a1 (fee 50) can only come after a0.
	pos := map[cryptoutil.Hash]int{}
	for i, tx := range sel {
		pos[tx.ID()] = i
	}
	if pos[a0.ID()] > pos[a1.ID()] {
		t.Error("nonce order violated within sender")
	}
	if pos[b0.ID()] > pos[a0.ID()] {
		t.Error("fee priority violated across senders")
	}
}

func TestMempoolSkipsUnaffordableAndGaps(t *testing.T) {
	kp := testKey(t, 1)
	st := NewState(map[Address]uint64{kp.Fingerprint(): 10})
	pool := NewMempool()
	// Nonce 1 without nonce 0: a gap, not selectable.
	gap := &Tx{To: Address{9}, Amount: 1, Nonce: 1, Kind: KindPayment}
	gap.Sign(kp)
	pool.Add(gap)
	if sel := pool.Select(st, 10); len(sel) != 0 {
		t.Errorf("selected %d from gapped pool, want 0", len(sel))
	}
	// Unaffordable tx is left in pool but not selected.
	rich := &Tx{To: Address{9}, Amount: 100, Nonce: 0, Kind: KindPayment}
	rich.Sign(kp)
	pool.Add(rich)
	if sel := pool.Select(st, 10); len(sel) != 0 {
		t.Errorf("selected unaffordable tx")
	}
	if pool.Len() != 2 {
		t.Errorf("pool should retain both txs, has %d", pool.Len())
	}
}

func TestMempoolEvictsBadSignature(t *testing.T) {
	pool := NewMempool()
	bad := &Tx{From: Address{1}, FromPub: make([]byte, 32), To: Address{2}, Amount: 1, Kind: KindPayment, Sig: []byte("junk")}
	pool.Add(bad)
	st := NewState(nil)
	pool.Select(st, 10)
	if pool.Len() != 0 {
		t.Error("invalid-signature tx not evicted")
	}
}

func TestMempoolRemoveMined(t *testing.T) {
	kp := testKey(t, 1)
	c := testChain(t, map[Address]uint64{kp.Fingerprint(): 100})
	pool := NewMempool()
	tx := &Tx{To: Address{2}, Amount: 1, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	pool.Add(tx)
	b := extend(t, c, []*Tx{tx}, Address{3})
	pool.RemoveMined(b)
	if pool.Has(tx.ID()) {
		t.Error("mined tx still pending")
	}
}

// Property: random valid payment sequences conserve total supply minus
// nothing (fees are paid to miners, so supply = genesis + subsidies).
func TestSupplyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]*cryptoutil.KeyPair, 4)
		alloc := map[Address]uint64{}
		for i := range keys {
			kp, err := cryptoutil.GenerateKeyPair(rng)
			if err != nil {
				return false
			}
			keys[i] = kp
			alloc[kp.Fingerprint()] = 1000
		}
		c := NewChain(Config{InitialDifficulty: 4, Subsidy: 50, GenesisAlloc: alloc})
		minerAddr := Address{0x77}
		nonces := map[Address]uint64{}
		blocks := 1 + rng.Intn(4)
		for bi := 0; bi < blocks; bi++ {
			var txs []*Tx
			for ti := 0; ti < rng.Intn(4); ti++ {
				from := keys[rng.Intn(len(keys))]
				to := keys[rng.Intn(len(keys))].Fingerprint()
				addr := from.Fingerprint()
				tx := &Tx{To: to, Amount: uint64(rng.Intn(50)), Fee: uint64(rng.Intn(5)), Nonce: nonces[addr], Kind: KindPayment}
				tx.Sign(from)
				if c.State().CheckTx(tx) != nil {
					continue
				}
				// Also ensure it applies after earlier txs in this block:
				txs = append(txs, tx)
				nonces[addr]++
			}
			// Filter to a sequence that actually applies.
			st := c.State().Clone()
			var ok []*Tx
			for _, tx := range txs {
				if st.ApplyTx(tx) == nil {
					ok = append(ok, tx)
				}
			}
			ts := time.Duration(c.Head().Header.Time) + time.Second
			b, err := c.NewBlock(c.HeadHash(), ok, ts, minerAddr)
			if err != nil {
				return false
			}
			if err := c.AddBlock(b); err != nil {
				return false
			}
		}
		var total uint64
		for _, bal := range c.State().Balances {
			total += bal
		}
		want := uint64(4*1000) + uint64(blocks)*50
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMempoolSameNonceConflictPrefersHigherFee(t *testing.T) {
	kp := testKey(t, 1)
	st := NewState(map[Address]uint64{kp.Fingerprint(): 100})
	cheap := &Tx{To: Address{1}, Amount: 1, Fee: 1, Nonce: 0, Kind: KindPayment}
	cheap.Sign(kp)
	rich := &Tx{To: Address{2}, Amount: 1, Fee: 9, Nonce: 0, Kind: KindPayment}
	rich.Sign(kp)
	// Regardless of insertion order, the higher-fee conflict must win.
	for _, order := range [][]*Tx{{cheap, rich}, {rich, cheap}} {
		pool := NewMempool()
		for _, tx := range order {
			pool.Add(tx)
		}
		sel := pool.Select(st, 10)
		if len(sel) != 1 || sel[0].ID() != rich.ID() {
			t.Fatalf("selected %d txs; conflict resolution not fee-deterministic", len(sel))
		}
	}
}

func TestWalletSequencesMixedKinds(t *testing.T) {
	kp := testKey(t, 1)
	c := testChain(t, map[Address]uint64{kp.Fingerprint(): 1000})
	w := NewWallet(kp, 0)
	if w.Address() != kp.Fingerprint() || w.Key() != kp {
		t.Fatal("wallet identity wrong")
	}
	txs := []*Tx{
		w.Pay(Address{1}, 10, 1),
		w.Anchor([]byte("document hash"), 1),
		w.Pay(Address{2}, 20, 1),
	}
	for i, tx := range txs {
		if tx.Nonce != uint64(i) {
			t.Fatalf("tx %d nonce = %d", i, tx.Nonce)
		}
		if err := tx.CheckSig(); err != nil {
			t.Fatal(err)
		}
	}
	extend(t, c, txs, Address{9})
	st := c.State()
	if st.Balance(Address{1}) != 10 || st.Balance(Address{2}) != 20 {
		t.Error("payments not applied")
	}
	if st.Nonce(kp.Fingerprint()) != 3 || w.Nonce() != 3 {
		t.Errorf("nonces: chain %d wallet %d", st.Nonce(kp.Fingerprint()), w.Nonce())
	}
	// SignOp claims the next slot for an externally shaped tx.
	op := w.SignOp(&Tx{Kind: KindContract, Payload: []byte("{}"), Fee: 1})
	if op.Nonce != 3 || op.CheckSig() != nil {
		t.Error("SignOp wrong")
	}
	w.SetNonce(10)
	if w.NextNonce() != 10 {
		t.Error("SetNonce/NextNonce wrong")
	}
}
