package chain

import (
	"sort"

	"repro/internal/cryptoutil"
)

// Mempool holds transactions waiting for inclusion, ordered for block
// assembly by fee (descending) with per-sender nonce order preserved.
type Mempool struct {
	txs map[cryptoutil.Hash]*Tx
}

// NewMempool creates an empty mempool.
func NewMempool() *Mempool {
	return &Mempool{txs: map[cryptoutil.Hash]*Tx{}}
}

// Add inserts a transaction; duplicates are ignored. It reports whether the
// transaction was new.
func (m *Mempool) Add(tx *Tx) bool {
	id := tx.ID()
	if _, ok := m.txs[id]; ok {
		return false
	}
	m.txs[id] = tx
	return true
}

// Has reports whether the transaction is pending.
func (m *Mempool) Has(id cryptoutil.Hash) bool { _, ok := m.txs[id]; return ok }

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return len(m.txs) }

// RemoveMined deletes every transaction included in block b.
func (m *Mempool) RemoveMined(b *Block) {
	for _, tx := range b.Txs {
		delete(m.txs, tx.ID())
	}
}

// Select returns up to max transactions that apply cleanly, in order,
// against state st: highest fee first, respecting per-sender nonce
// sequences. Transactions that cannot currently apply (nonce gap,
// insufficient balance) are left in the pool; permanently invalid
// transactions (bad signature) are evicted.
func (m *Mempool) Select(st *State, max int) []*Tx {
	// Group by sender, sorted by nonce, so sequences apply in order.
	bySender := map[Address][]*Tx{}
	for _, tx := range m.txs {
		if err := tx.CheckSig(); err != nil {
			delete(m.txs, tx.ID())
			continue
		}
		bySender[tx.From] = append(bySender[tx.From], tx)
	}
	for _, seq := range bySender {
		sort.Slice(seq, func(i, j int) bool {
			// Same-nonce transactions conflict: prefer the higher fee, then
			// break ties by ID so block assembly is deterministic even
			// though the pool map iterates in random order.
			if seq[i].Nonce != seq[j].Nonce {
				return seq[i].Nonce < seq[j].Nonce
			}
			if seq[i].Fee != seq[j].Fee {
				return seq[i].Fee > seq[j].Fee
			}
			return lessHash(seq[i].ID(), seq[j].ID())
		})
	}
	// Candidate heads: the next applicable tx per sender. Pick the highest
	// fee among heads, apply, advance that sender. Deterministic tie-break
	// on tx ID keeps simulations reproducible.
	work := st.Clone()
	var out []*Tx
	idx := map[Address]int{}
	for len(out) < max {
		var best *Tx
		var bestID cryptoutil.Hash
		for from, seq := range bySender {
			i := idx[from]
			if i >= len(seq) {
				continue
			}
			tx := seq[i]
			if work.CheckTx(tx) != nil {
				continue
			}
			id := tx.ID()
			if best == nil || tx.Fee > best.Fee || (tx.Fee == best.Fee && lessHash(id, bestID)) {
				best, bestID = tx, id
			}
		}
		if best == nil {
			break
		}
		if err := work.ApplyTx(best); err != nil {
			break // should not happen: CheckTx passed above
		}
		out = append(out, best)
		idx[best.From]++
	}
	return out
}

func lessHash(a, b cryptoutil.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
