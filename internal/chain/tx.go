// Package chain implements a from-scratch proof-of-work blockchain: signed
// account-model transactions, Merkle-committed blocks, difficulty
// retargeting, heaviest-chain fork choice with reorg support, a fee-ordered
// mempool, and simulated miners that run over internal/simnet.
//
// The paper (§3.1, §3.3) treats blockchains as the enabling substrate for
// decentralized naming and storage incentives: "cryptographically auditable,
// append-only ledgers [that] allow users to publicly register a name …
// blockchains essentially trade scalability and performance for global
// consensus and security." This package provides exactly that ledger, plus
// the weaknesses the paper lists so they can be measured: the 51 % attack
// (Miner.Withhold + experiment X2), wasteful mining (WorkExpended), and the
// endless-ledger problem (Chain.TotalBytes).
//
// Proof-of-work here is literal — blocks carry a nonce whose header hash
// meets the difficulty target — but block *timing* is simulated: a miner
// with hashrate R at difficulty D finds blocks after Exp(D/R) of virtual
// time. Experiments should therefore use modest difficulties (2^10–2^20
// expected hashes) so that the literal grind stays cheap in wall-clock time
// while fork choice, retargeting, and attacks behave exactly as they would
// at production difficulty.
package chain

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"

	"repro/internal/cryptoutil"
)

// Address identifies an account: the SHA-256 fingerprint of its ed25519
// public key.
type Address = cryptoutil.Hash

// Tx kinds. Payment moves value; the other kinds carry subsystem payloads
// (name operations, storage contracts) and are interpreted by the layers
// built on the chain. The chain itself validates signatures, nonces, and
// balances for every kind.
const (
	KindPayment  = "pay"
	KindNameOp   = "name"
	KindContract = "contract"
	KindAnchor   = "anchor" // arbitrary data commitment (e.g. zone file hash)
)

// Tx is one signed account-model transaction.
type Tx struct {
	From    Address
	FromPub ed25519.PublicKey
	To      Address
	Amount  uint64
	Fee     uint64
	Nonce   uint64 // must equal the sender's current account nonce
	Kind    string
	Payload []byte
	Sig     []byte
}

// encode serializes the transaction deterministically; withSig controls
// whether the signature is appended (the signing hash excludes it).
func (tx *Tx) encode(withSig bool) []byte {
	var buf []byte
	var scratch [8]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint64(scratch[:], uint64(len(b)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	buf = append(buf, tx.From[:]...)
	put(tx.FromPub)
	buf = append(buf, tx.To[:]...)
	putU64(tx.Amount)
	putU64(tx.Fee)
	putU64(tx.Nonce)
	put([]byte(tx.Kind))
	put(tx.Payload)
	if withSig {
		put(tx.Sig)
	}
	return buf
}

// SigHash returns the digest the sender signs.
func (tx *Tx) SigHash() cryptoutil.Hash { return cryptoutil.SumHash(tx.encode(false)) }

// ID returns the transaction identifier (hash over the full encoding,
// signature included).
func (tx *Tx) ID() cryptoutil.Hash { return cryptoutil.SumHash(tx.encode(true)) }

// WireSize returns the simulated wire size of the transaction in bytes.
func (tx *Tx) WireSize() int { return len(tx.encode(true)) }

// IsCoinbase reports whether this is a block-reward transaction (zero
// sender, no signature).
func (tx *Tx) IsCoinbase() bool { return tx.From.IsZero() }

// Sign signs the transaction with the key pair, filling From, FromPub, and
// Sig. The pair's fingerprint becomes the sender address.
func (tx *Tx) Sign(kp *cryptoutil.KeyPair) {
	tx.From = kp.Fingerprint()
	tx.FromPub = kp.Public
	h := tx.SigHash()
	tx.Sig = kp.Sign(h[:])
}

// CheckSig validates the signature and that FromPub matches From. Coinbase
// transactions have no signature and always pass.
func (tx *Tx) CheckSig() error {
	if tx.IsCoinbase() {
		return nil
	}
	if cryptoutil.PublicFingerprint(tx.FromPub) != tx.From {
		return fmt.Errorf("chain: tx %s: public key does not match sender address", tx.ID().Short())
	}
	h := tx.SigHash()
	if !cryptoutil.Verify(tx.FromPub, h[:], tx.Sig) {
		return fmt.Errorf("chain: tx %s: invalid signature", tx.ID().Short())
	}
	return nil
}

// NewCoinbase builds the block-reward transaction paying amount to miner.
// height is mixed into the payload so coinbase IDs are unique per block.
func NewCoinbase(miner Address, amount, height uint64) *Tx {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, height)
	return &Tx{To: miner, Amount: amount, Kind: KindPayment, Payload: payload}
}
