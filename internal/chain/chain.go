package chain

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// Config sets the consensus parameters of a chain.
type Config struct {
	// InitialDifficulty is the genesis difficulty in expected hashes.
	// Simulations should keep difficulties modest (2^10–2^20): timing is
	// simulated, but nonce grinding is literal.
	InitialDifficulty uint64
	// TargetSpacing is the desired inter-block time; retargeting steers the
	// difficulty toward it.
	TargetSpacing time.Duration
	// RetargetInterval is how many blocks between difficulty adjustments.
	// Zero disables retargeting.
	RetargetInterval int
	// Subsidy is the coinbase block reward.
	Subsidy uint64
	// MaxTxsPerBlock caps non-coinbase transactions per block (the paper's
	// "limits on data storage" weakness). Zero means 1000.
	MaxTxsPerBlock int
	// MaxPayloadBytes caps a single transaction payload. Zero means 4096.
	MaxPayloadBytes int
	// GenesisAlloc pre-funds accounts at genesis.
	GenesisAlloc map[Address]uint64
}

func (c Config) withDefaults() Config {
	if c.InitialDifficulty == 0 {
		c.InitialDifficulty = 1 << 12
	}
	if c.TargetSpacing == 0 {
		c.TargetSpacing = 10 * time.Second
	}
	if c.MaxTxsPerBlock == 0 {
		c.MaxTxsPerBlock = 1000
	}
	if c.MaxPayloadBytes == 0 {
		c.MaxPayloadBytes = 4096
	}
	if c.Subsidy == 0 {
		c.Subsidy = 50
	}
	return c
}

// Chain is one replica's view of the block tree. Each simulated node keeps
// its own Chain; consensus emerges from exchanging blocks and applying the
// same heaviest-chain rule.
type Chain struct {
	cfg     Config
	blocks  map[cryptoutil.Hash]*Block
	states  map[cryptoutil.Hash]*State
	work    map[cryptoutil.Hash]*big.Int // cumulative work including the block itself
	head    cryptoutil.Hash
	genesis cryptoutil.Hash
	bytes   int64 // total bytes across all stored blocks ("endless ledger")
	reorgs  int
	// observers fire after the head changes.
	onHead []func(newHead *Block)

	// Observability (nil until SetObs): accepted-block and reorg counters,
	// reorg depth distribution, and the head height gauge.
	obsAccepted   *obs.Counter
	obsReorgs     *obs.Counter
	obsReorgDepth *obs.Histogram
	obsHeight     *obs.Gauge
}

// ErrUnknownParent is returned by AddBlock when the parent block has not
// been seen; the caller should fetch it and retry.
var ErrUnknownParent = errors.New("chain: unknown parent block")

// ErrDuplicate is returned for blocks already in the tree.
var ErrDuplicate = errors.New("chain: duplicate block")

// NewChain creates a chain with a deterministic genesis block derived from
// the config.
func NewChain(cfg Config) *Chain {
	cfg = cfg.withDefaults()
	c := &Chain{
		cfg:    cfg,
		blocks: map[cryptoutil.Hash]*Block{},
		states: map[cryptoutil.Hash]*State{},
		work:   map[cryptoutil.Hash]*big.Int{},
	}
	genesis := &Block{Header: Header{Difficulty: 1}}
	gh := genesis.Hash()
	c.blocks[gh] = genesis
	c.states[gh] = NewState(cfg.GenesisAlloc)
	c.work[gh] = big.NewInt(0)
	c.head = gh
	c.genesis = gh
	c.bytes += int64(genesis.WireSize())
	return c
}

// SetObs points the chain's protocol metrics at a registry (normally the
// simnet network's, wired by NewMiner). Several replicas publishing into
// one registry accumulate network-wide totals: chain.block.accepted counts
// every replica's acceptances, chain.reorg.depth pools every replica's
// branch switches.
func (c *Chain) SetObs(r *obs.Registry) {
	c.obsAccepted = r.Counter("chain.block.accepted")
	c.obsReorgs = r.Counter("chain.reorg.count")
	c.obsReorgDepth = r.Histogram("chain.reorg.depth")
	c.obsHeight = r.Gauge("chain.height")
}

// Config returns the chain's configuration.
func (c *Chain) Config() Config { return c.cfg }

// Genesis returns the genesis block hash.
func (c *Chain) Genesis() cryptoutil.Hash { return c.genesis }

// Head returns the current best block.
func (c *Chain) Head() *Block { return c.blocks[c.head] }

// HeadHash returns the current best block's hash.
func (c *Chain) HeadHash() cryptoutil.Hash { return c.head }

// Height returns the height of the head block.
func (c *Chain) Height() uint64 { return c.blocks[c.head].Header.Height }

// Block returns a block by hash, or nil.
func (c *Chain) Block(h cryptoutil.Hash) *Block { return c.blocks[h] }

// HasBlock reports whether the block is known.
func (c *Chain) HasBlock(h cryptoutil.Hash) bool { _, ok := c.blocks[h]; return ok }

// State returns the account state at the head.
func (c *Chain) State() *State { return c.states[c.head] }

// StateAt returns the state at an arbitrary known block, or nil.
func (c *Chain) StateAt(h cryptoutil.Hash) *State { return c.states[h] }

// TotalBytes returns the cumulative ledger size in bytes over every block
// ever stored (including stale branches) — the paper's "endless ledger"
// metric.
func (c *Chain) TotalBytes() int64 { return c.bytes }

// WorkExpended returns the cumulative expected hash evaluations along the
// best chain — the paper's "wasteful mining computation" metric.
func (c *Chain) WorkExpended() *big.Int { return new(big.Int).Set(c.work[c.head]) }

// Reorgs returns how many times the head has switched branches.
func (c *Chain) Reorgs() int { return c.reorgs }

// NumBlocks returns the number of blocks in the tree (all branches).
func (c *Chain) NumBlocks() int { return len(c.blocks) }

// OnHead registers an observer invoked after every head change.
func (c *Chain) OnHead(f func(*Block)) { c.onHead = append(c.onHead, f) }

// NextDifficulty computes the difficulty for a block extending parent,
// applying Bitcoin-style proportional retargeting clamped to [¼, 4]×.
func (c *Chain) NextDifficulty(parentHash cryptoutil.Hash) uint64 {
	parent := c.blocks[parentHash]
	if parent == nil {
		return c.cfg.InitialDifficulty
	}
	if parent.Header.Height == 0 {
		return c.cfg.InitialDifficulty
	}
	interval := c.cfg.RetargetInterval
	if interval <= 0 || parent.Header.Height%uint64(interval) != 0 {
		return parent.Header.Difficulty
	}
	// Walk back interval blocks to find the window start.
	start := parent
	for i := 0; i < interval && start.Header.Height > 0; i++ {
		start = c.blocks[start.Header.Prev]
	}
	actual := time.Duration(parent.Header.Time - start.Header.Time)
	expected := c.cfg.TargetSpacing * time.Duration(interval)
	if actual <= 0 {
		actual = time.Nanosecond
	}
	ratio := float64(expected) / float64(actual)
	if ratio > 4 {
		ratio = 4
	}
	if ratio < 0.25 {
		ratio = 0.25
	}
	next := uint64(float64(parent.Header.Difficulty) * ratio)
	if next == 0 {
		next = 1
	}
	return next
}

// validate fully checks a block against its (known) parent.
func (c *Chain) validate(b *Block) error {
	parent, ok := c.blocks[b.Header.Prev]
	if !ok {
		return ErrUnknownParent
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("chain: block %s: height %d, parent height %d", b.Hash().Short(), b.Header.Height, parent.Header.Height)
	}
	if b.Header.Time < parent.Header.Time {
		return fmt.Errorf("chain: block %s: time goes backwards", b.Hash().Short())
	}
	if want := c.NextDifficulty(b.Header.Prev); b.Header.Difficulty != want {
		return fmt.Errorf("chain: block %s: difficulty %d, want %d", b.Hash().Short(), b.Header.Difficulty, want)
	}
	if !b.Header.MeetsTarget() {
		return fmt.Errorf("chain: block %s: proof of work below target", b.Hash().Short())
	}
	if b.Header.MerkleRoot != txMerkleRoot(b.Txs) {
		return fmt.Errorf("chain: block %s: merkle root mismatch", b.Hash().Short())
	}
	if len(b.Txs) == 0 {
		return fmt.Errorf("chain: block %s: missing coinbase", b.Hash().Short())
	}
	if len(b.Txs)-1 > c.cfg.MaxTxsPerBlock {
		return fmt.Errorf("chain: block %s: %d txs exceeds cap %d", b.Hash().Short(), len(b.Txs)-1, c.cfg.MaxTxsPerBlock)
	}
	if !b.Txs[0].IsCoinbase() {
		return fmt.Errorf("chain: block %s: first tx is not coinbase", b.Hash().Short())
	}
	for _, tx := range b.Txs[1:] {
		if tx.IsCoinbase() {
			return fmt.Errorf("chain: block %s: extra coinbase", b.Hash().Short())
		}
		if len(tx.Payload) > c.cfg.MaxPayloadBytes {
			return fmt.Errorf("chain: block %s: tx payload %d exceeds cap %d", b.Hash().Short(), len(tx.Payload), c.cfg.MaxPayloadBytes)
		}
	}
	return nil
}

// AddBlock validates b, connects it to the tree, computes its state, and
// reorgs the head if b's branch now has the most cumulative work. It
// returns ErrUnknownParent if the parent is missing and ErrDuplicate if b
// is already present.
func (c *Chain) AddBlock(b *Block) error {
	h := b.Hash()
	if _, ok := c.blocks[h]; ok {
		return ErrDuplicate
	}
	if err := c.validate(b); err != nil {
		return err
	}
	// Apply transactions on a copy of the parent state. A missing parent
	// state means Compact discarded it: the branch forks too deep.
	parentState, ok := c.states[b.Header.Prev]
	if !ok {
		return ErrTooDeepFork
	}
	st := parentState.Clone()
	var fees uint64
	for _, tx := range b.Txs[1:] {
		if err := st.ApplyTx(tx); err != nil {
			return fmt.Errorf("chain: block %s: %w", h.Short(), err)
		}
		fees += tx.Fee
	}
	if want := c.cfg.Subsidy + fees; b.Txs[0].Amount != want {
		return fmt.Errorf("chain: block %s: coinbase amount %d, want %d", h.Short(), b.Txs[0].Amount, want)
	}
	st.applyCoinbase(b.Txs[0])

	c.blocks[h] = b
	c.states[h] = st
	c.work[h] = new(big.Int).Add(c.work[b.Header.Prev], Work(b.Header.Difficulty))
	c.bytes += int64(b.WireSize())

	if c.obsAccepted != nil {
		c.obsAccepted.Inc()
	}
	// Heaviest chain wins; ties break toward the incumbent (first seen).
	if c.work[h].Cmp(c.work[c.head]) > 0 {
		oldHead := c.head
		c.head = h
		if b.Header.Prev != oldHead {
			c.reorgs++
			if c.obsReorgs != nil {
				c.obsReorgs.Inc()
				c.obsReorgDepth.Observe(float64(c.forkDepth(oldHead, h)))
			}
		}
		if c.obsHeight != nil {
			c.obsHeight.Set(float64(b.Header.Height))
		}
		for _, f := range c.onHead {
			f(b)
		}
	}
	return nil
}

// forkDepth returns how many blocks the abandoned branch extended past the
// common ancestor of oldHead and newHead — the depth of the reorg from the
// replica's point of view. Walks stop early (best-effort) if Compact has
// discarded part of either branch.
func (c *Chain) forkDepth(oldHead, newHead cryptoutil.Hash) uint64 {
	a, okA := c.blocks[oldHead]
	b, okB := c.blocks[newHead]
	if !okA || !okB {
		return 0
	}
	for b.Header.Height > a.Header.Height {
		nb, ok := c.blocks[b.Header.Prev]
		if !ok {
			return 0
		}
		b = nb
	}
	for a.Header.Height > b.Header.Height {
		na, ok := c.blocks[a.Header.Prev]
		if !ok {
			return a.Header.Height - b.Header.Height
		}
		a = na
	}
	// Blocks are stored once, so pointer equality identifies the ancestor.
	for a != b {
		na, okA := c.blocks[a.Header.Prev]
		nb, okB := c.blocks[b.Header.Prev]
		if !okA || !okB {
			break
		}
		a, b = na, nb
	}
	oldHeight := c.blocks[oldHead].Header.Height
	return oldHeight - a.Header.Height
}

// Ancestors returns up to max block hashes walking back from h (inclusive),
// newest first. Used by the sync protocol to fetch missing branches.
func (c *Chain) Ancestors(h cryptoutil.Hash, max int) []cryptoutil.Hash {
	var out []cryptoutil.Hash
	for max > 0 {
		b, ok := c.blocks[h]
		if !ok {
			break
		}
		out = append(out, h)
		if b.Header.Height == 0 {
			break
		}
		h = b.Header.Prev
		max--
	}
	return out
}

// IsOnBestChain reports whether block h lies on the path from genesis to
// the current head.
func (c *Chain) IsOnBestChain(h cryptoutil.Hash) bool {
	b, ok := c.blocks[h]
	if !ok {
		return false
	}
	cur := c.blocks[c.head]
	for cur.Header.Height > b.Header.Height {
		cur = c.blocks[cur.Header.Prev]
	}
	return cur.Hash() == h
}

// Confirmations returns how many blocks (including itself) are stacked on
// top of h along the best chain, or 0 if h is not on the best chain.
func (c *Chain) Confirmations(h cryptoutil.Hash) uint64 {
	if !c.IsOnBestChain(h) {
		return 0
	}
	return c.Height() - c.blocks[h].Header.Height + 1
}

// BestBlocks returns the best chain from genesis to head, oldest first.
func (c *Chain) BestBlocks() []*Block {
	var out []*Block
	for h := c.head; ; {
		b := c.blocks[h]
		out = append(out, b)
		if b.Header.Height == 0 {
			break
		}
		h = b.Header.Prev
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FindTx searches the best chain for a transaction by ID and returns it
// with the containing block, or nils.
func (c *Chain) FindTx(id cryptoutil.Hash) (*Tx, *Block) {
	for _, b := range c.BestBlocks() {
		for _, tx := range b.Txs {
			if tx.ID() == id {
				return tx, b
			}
		}
	}
	return nil, nil
}

// NewBlock assembles and grinds a block extending parent with the given
// transactions (coinbase excluded; it is built here). The caller is
// responsible for having validated the transactions against the parent
// state.
func (c *Chain) NewBlock(parentHash cryptoutil.Hash, txs []*Tx, timestamp time.Duration, miner Address) (*Block, error) {
	parent, ok := c.blocks[parentHash]
	if !ok {
		return nil, ErrUnknownParent
	}
	var fees uint64
	for _, tx := range txs {
		fees += tx.Fee
	}
	height := parent.Header.Height + 1
	all := append([]*Tx{NewCoinbase(miner, c.cfg.Subsidy+fees, height)}, txs...)
	b := &Block{
		Header: Header{
			Prev:       parentHash,
			MerkleRoot: txMerkleRoot(all),
			Height:     height,
			Time:       int64(timestamp),
			Difficulty: c.NextDifficulty(parentHash),
		},
		Txs: all,
	}
	b.Header.Grind()
	return b, nil
}

// ErrTooDeepFork is returned by AddBlock when a block forks below the
// compaction checkpoint: its parent's state has been discarded, so the
// branch can no longer be validated. This is the standard price of
// checkpoint-style pruning.
var ErrTooDeepFork = errors.New("chain: fork below compaction checkpoint")

// Compact discards per-block account states deeper than keepStates blocks
// under the best head — the full node's mitigation of the paper's "endless
// ledger problem" for working-set memory. Block bodies are retained (the
// naming index replays them; SPV clients need headers), but reorgs deeper
// than keepStates become impossible: AddBlock returns ErrTooDeepFork for
// branches rooted below the checkpoint. It returns how many states were
// freed.
func (c *Chain) Compact(keepStates uint64) int {
	head := c.blocks[c.head].Header.Height
	if head <= keepStates {
		return 0
	}
	cutoff := head - keepStates
	freed := 0
	for h, b := range c.blocks {
		if b.Header.Height < cutoff {
			if _, ok := c.states[h]; ok {
				delete(c.states, h)
				freed++
			}
		}
	}
	return freed
}

// StatesHeld returns how many per-block states are currently retained.
func (c *Chain) StatesHeld() int { return len(c.states) }
