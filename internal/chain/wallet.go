package chain

import (
	"repro/internal/cryptoutil"
)

// Wallet wraps a key pair with local nonce tracking so that applications
// interleaving different transaction kinds (payments, name operations,
// storage contracts) on one account do not have to hand-sequence nonces —
// the friction that otherwise leaks into every multi-layer workflow.
type Wallet struct {
	key   *cryptoutil.KeyPair
	nonce uint64
}

// NewWallet creates a wallet for key starting at the given account nonce
// (read it from chain state with State().Nonce(addr)).
func NewWallet(key *cryptoutil.KeyPair, nonce uint64) *Wallet {
	return &Wallet{key: key, nonce: nonce}
}

// Address returns the wallet's account address.
func (w *Wallet) Address() Address { return w.key.Fingerprint() }

// Key returns the underlying key pair (for layers that sign their own
// transaction shapes).
func (w *Wallet) Key() *cryptoutil.KeyPair { return w.key }

// Nonce returns the next nonce the wallet will use.
func (w *Wallet) Nonce() uint64 { return w.nonce }

// SetNonce resynchronizes the wallet with chain state (after a reorg or an
// externally signed transaction).
func (w *Wallet) SetNonce(n uint64) { w.nonce = n }

// NextNonce returns the current nonce and advances the counter; layers
// that build their own transactions call this to claim a slot.
func (w *Wallet) NextNonce() uint64 {
	n := w.nonce
	w.nonce++
	return n
}

// Pay builds a signed payment of amount to the recipient with the given
// fee.
func (w *Wallet) Pay(to Address, amount, fee uint64) *Tx {
	tx := &Tx{To: to, Amount: amount, Fee: fee, Kind: KindPayment, Nonce: w.NextNonce()}
	tx.Sign(w.key)
	return tx
}

// Anchor builds a signed data-commitment transaction carrying payload
// (e.g. a document hash) with the given fee.
func (w *Wallet) Anchor(payload []byte, fee uint64) *Tx {
	tx := &Tx{Kind: KindAnchor, Payload: payload, Fee: fee, Nonce: w.NextNonce()}
	tx.Sign(w.key)
	return tx
}

// SignOp signs an arbitrary prepared transaction shape (kind + payload +
// amounts) at the wallet's next nonce, returning the same transaction.
func (w *Wallet) SignOp(tx *Tx) *Tx {
	tx.Nonce = w.NextNonce()
	tx.Sign(w.key)
	return tx
}
