package chain

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// Conformance: the chain subsystem is driven through the canonical fault
// battery (internal/simnet/fault) and must recover once faults clear. The
// invariants:
//
//   - Reconvergence: after the recovery window every miner reports the same
//     head hash — partitions fork the chain, heals must reorg it back.
//   - Liveness: the chain keeps growing despite the faults.
//   - No panics on garbage: corrupt-10pct delivers unparseable payloads to
//     every handler.
func TestChainRecoveryConformance(t *testing.T) {
	const (
		seed    = 401
		nMiners = 5
		horizon = 30 * time.Minute
	)
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			nw := simnet.New(seed)
			miners := buildMiners(t, nw, nMiners, 100, minerCfg())
			eligible := make([]simnet.NodeID, nMiners)
			for i, m := range miners {
				eligible[i] = m.Node().ID()
			}
			sc.Build(seed, eligible, horizon).Apply(nw)
			for _, m := range miners {
				m.Start()
			}
			// Run through the fault window and the fault-free tail, then an
			// extra convergence margin so the last blocks propagate.
			nw.Run(horizon + 5*time.Minute)
			for _, m := range miners {
				m.Stop()
			}
			nw.RunAll()

			head := miners[0].Chain().HeadHash()
			for i, m := range miners {
				if got := m.Chain().HeadHash(); got != head {
					t.Errorf("miner %d head %s != miner 0 head %s: chain did not reconverge",
						i, got.Short(), head.Short())
				}
			}
			if h := miners[0].Chain().Height(); h < 30 {
				t.Errorf("height %d after %v; chain stalled under %s", h, horizon, sc.Name)
			}
		})
	}
}
