package chain

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// buildMiners creates n fully meshed miners with individual chain replicas.
func buildMiners(t testing.TB, nw *simnet.Network, n int, hashrate float64, cfg Config) []*Miner {
	t.Helper()
	miners := make([]*Miner, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		ids[i] = node.ID()
		addr := cryptoutil.SumHash([]byte{byte(i), 0xAB})
		miners[i] = NewMiner(node, NewChain(cfg), addr, hashrate)
	}
	for i, m := range miners {
		peers := make([]simnet.NodeID, 0, n-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	return miners
}

func minerCfg() Config {
	return Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     10 * time.Second,
		RetargetInterval:  0, // fixed difficulty keeps the test arithmetic simple
		Subsidy:           50,
	}
}

func TestMinersConverge(t *testing.T) {
	nw := simnet.New(11)
	miners := buildMiners(t, nw, 5, 100, minerCfg()) // mean block time ~10s across the network
	for _, m := range miners {
		m.Start()
	}
	nw.Run(10 * time.Minute)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	head := miners[0].Chain().HeadHash()
	for i, m := range miners {
		if m.Chain().HeadHash() != head {
			t.Errorf("miner %d head %s != %s", i, m.Chain().HeadHash().Short(), head.Short())
		}
	}
	h := miners[0].Chain().Height()
	if h < 20 {
		t.Errorf("only %d blocks in 10 min; expected ≥20", h)
	}
	// Every miner should have found at least one block with equal hashrate.
	total := 0
	for _, m := range miners {
		total += m.BlocksFound()
	}
	if total < int(h) {
		t.Errorf("found %d blocks but height is %d", total, h)
	}
}

func TestTxPropagationAndInclusion(t *testing.T) {
	kp := testKey(t, 1)
	cfg := minerCfg()
	cfg.GenesisAlloc = map[Address]uint64{kp.Fingerprint(): 1000}
	nw := simnet.New(12)
	miners := buildMiners(t, nw, 3, 100, cfg)
	for _, m := range miners {
		m.Start()
	}
	tx := &Tx{To: Address{5}, Amount: 40, Fee: 2, Nonce: 0, Kind: KindPayment}
	tx.Sign(kp)
	nw.After(time.Second, func() { miners[0].SubmitTx(tx) })
	nw.Run(5 * time.Minute)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	for i, m := range miners {
		got, _ := m.Chain().FindTx(tx.ID())
		if got == nil {
			t.Errorf("miner %d: tx not on chain", i)
		}
		if bal := m.Chain().State().Balance(Address{5}); bal != 40 {
			t.Errorf("miner %d: recipient balance %d, want 40", i, bal)
		}
	}
}

func TestPartitionForksThenHealsWithReorg(t *testing.T) {
	nw := simnet.New(13)
	miners := buildMiners(t, nw, 4, 100, minerCfg())
	for _, m := range miners {
		m.Start()
	}
	ids := func(ms []*Miner) []simnet.NodeID {
		out := make([]simnet.NodeID, len(ms))
		for i, m := range ms {
			out[i] = m.Node().ID()
		}
		return out
	}
	// Partition 3 vs 1: the majority side accumulates more work.
	nw.After(time.Minute, func() {
		nw.Partition(ids(miners[:3]), ids(miners[3:]))
	})
	nw.After(10*time.Minute, func() {
		nw.Heal()
		// Nudge resync: the lone miner learns the majority branch when the
		// next block floods; force one by continuing to run.
	})
	nw.Run(20 * time.Minute)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	head := miners[0].Chain().HeadHash()
	for i, m := range miners {
		if m.Chain().HeadHash() != head {
			t.Fatalf("miner %d did not converge after heal", i)
		}
	}
	if miners[3].Chain().Reorgs() == 0 {
		t.Error("minority miner should have reorged onto the majority branch")
	}
}

func TestCrashedMinerCatchesUpViaOrphanFetch(t *testing.T) {
	nw := simnet.New(14)
	miners := buildMiners(t, nw, 3, 100, minerCfg())
	for _, m := range miners {
		m.Start()
	}
	lagging := miners[2]
	nw.After(time.Minute, func() { lagging.Node().Crash() })
	nw.After(10*time.Minute, func() { lagging.Node().Restart() })
	nw.Run(25 * time.Minute)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	if lagging.Chain().HeadHash() != miners[0].Chain().HeadHash() {
		t.Errorf("restarted miner did not catch up: height %d vs %d",
			lagging.Chain().Height(), miners[0].Chain().Height())
	}
}

// TestFiftyOnePercentAttack mines a private branch with majority hashrate
// and checks it overtakes the honest chain — the §3.1 "51 % attack".
func TestFiftyOnePercentAttack(t *testing.T) {
	nw := simnet.New(15)
	cfg := minerCfg()
	ms := buildMiners(t, nw, 2, 0, cfg)
	honest, attacker := ms[0], ms[1]
	honest.hashrate = 100
	attacker.hashrate = 300 // 75 % of total power
	attacker.SetWithhold(true)

	fork := attacker.Chain().HeadHash() // fork from genesis
	attacker.SetMiningTarget(fork)
	honest.Start()
	attacker.Start()
	nw.Run(10 * time.Minute)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()

	privLen := len(attacker.Withheld())
	honestLen := int(honest.Chain().Height())
	if privLen <= honestLen {
		t.Fatalf("attacker with 75%% power should outpace honest chain: %d vs %d", privLen, honestLen)
	}
	// Release: honest node must reorg onto the attacker branch.
	attacker.Release()
	nw.RunAll()
	if honest.Chain().Reorgs() == 0 {
		t.Error("honest miner never reorged")
	}
	attackerTip := attacker.Withheld() // cleared by Release
	if len(attackerTip) != 0 {
		t.Error("withheld list should clear after release")
	}
	if honest.Chain().Height() < uint64(privLen) {
		t.Errorf("honest head height %d < attacker branch %d", honest.Chain().Height(), privLen)
	}
}

func TestMinerStopCancelsMining(t *testing.T) {
	nw := simnet.New(16)
	ms := buildMiners(t, nw, 1, 1000, minerCfg())
	ms[0].Start()
	nw.Run(time.Minute)
	found := ms[0].BlocksFound()
	if found == 0 {
		t.Fatal("no blocks found before stop")
	}
	ms[0].Stop()
	nw.Run(10 * time.Minute)
	if ms[0].BlocksFound() != found {
		t.Error("miner kept finding blocks after Stop")
	}
}

func TestMinerZeroHashrateInert(t *testing.T) {
	nw := simnet.New(17)
	ms := buildMiners(t, nw, 1, 0, minerCfg())
	ms[0].Start()
	nw.Run(time.Minute)
	if ms[0].BlocksFound() != 0 {
		t.Error("zero-hashrate miner found blocks")
	}
}

func TestWorkExpendedGrows(t *testing.T) {
	nw := simnet.New(18)
	ms := buildMiners(t, nw, 1, 1000, minerCfg())
	ms[0].Start()
	nw.Run(5 * time.Minute)
	ms[0].Stop()
	nw.RunAll()
	work := ms[0].Chain().WorkExpended()
	wantMin := int64(1 << 10) // at least one block's difficulty
	if work.Int64() < wantMin {
		t.Errorf("work expended = %v", work)
	}
	if ms[0].Chain().TotalBytes() == 0 {
		t.Error("ledger bytes not growing")
	}
}

func BenchmarkBlockGrind(b *testing.B) {
	c := NewChain(Config{InitialDifficulty: 1 << 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk, err := c.NewBlock(c.HeadHash(), nil, time.Duration(i), Address{1})
		if err != nil {
			b.Fatal(err)
		}
		_ = blk
	}
}

func BenchmarkChainValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	kp, _ := cryptoutil.GenerateKeyPair(rng)
	c := NewChain(Config{InitialDifficulty: 16, GenesisAlloc: map[Address]uint64{kp.Fingerprint(): 1 << 40}})
	var txs []*Tx
	for i := 0; i < 100; i++ {
		tx := &Tx{To: Address{9}, Amount: 1, Nonce: uint64(i), Kind: KindPayment}
		tx.Sign(kp)
		txs = append(txs, tx)
	}
	blk, err := c.NewBlock(c.HeadHash(), txs, time.Second, Address{1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.validate(blk); err != nil {
			b.Fatal(err)
		}
	}
}
