package chain

import (
	"fmt"
)

// State is the account state at some block: balances and per-account
// transaction nonces. States are immutable once attached to a block; Clone
// before applying new transactions.
type State struct {
	Balances map[Address]uint64
	Nonces   map[Address]uint64
}

// NewState creates an empty state, optionally seeded with an initial
// allocation.
func NewState(alloc map[Address]uint64) *State {
	s := &State{Balances: map[Address]uint64{}, Nonces: map[Address]uint64{}}
	for addr, amt := range alloc {
		s.Balances[addr] = amt
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{
		Balances: make(map[Address]uint64, len(s.Balances)),
		Nonces:   make(map[Address]uint64, len(s.Nonces)),
	}
	for k, v := range s.Balances {
		out.Balances[k] = v
	}
	for k, v := range s.Nonces {
		out.Nonces[k] = v
	}
	return out
}

// Balance returns the balance of addr (zero for unknown accounts).
func (s *State) Balance(addr Address) uint64 { return s.Balances[addr] }

// Nonce returns the next expected nonce for addr.
func (s *State) Nonce(addr Address) uint64 { return s.Nonces[addr] }

// CheckTx validates a non-coinbase transaction against the state without
// mutating it.
func (s *State) CheckTx(tx *Tx) error {
	if err := tx.CheckSig(); err != nil {
		return err
	}
	if tx.IsCoinbase() {
		return fmt.Errorf("chain: coinbase tx %s outside block position 0", tx.ID().Short())
	}
	if got, want := tx.Nonce, s.Nonces[tx.From]; got != want {
		return fmt.Errorf("chain: tx %s: nonce %d, want %d", tx.ID().Short(), got, want)
	}
	need := tx.Amount + tx.Fee
	if need < tx.Amount { // overflow
		return fmt.Errorf("chain: tx %s: amount+fee overflows", tx.ID().Short())
	}
	if bal := s.Balances[tx.From]; bal < need {
		return fmt.Errorf("chain: tx %s: balance %d < %d", tx.ID().Short(), bal, need)
	}
	return nil
}

// ApplyTx validates and applies one non-coinbase transaction.
func (s *State) ApplyTx(tx *Tx) error {
	if err := s.CheckTx(tx); err != nil {
		return err
	}
	s.Balances[tx.From] -= tx.Amount + tx.Fee
	s.Balances[tx.To] += tx.Amount
	s.Nonces[tx.From]++
	return nil
}

// applyCoinbase credits the block reward; amount correctness is checked by
// the chain against subsidy+fees.
func (s *State) applyCoinbase(tx *Tx) {
	s.Balances[tx.To] += tx.Amount
}
