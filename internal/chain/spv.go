package chain

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cryptoutil"
)

// Light-client (SPV) support. The paper's §3.1 naming discussion assumes
// users can verify name state without storing the "endless ledger"; SPV is
// how deployed blockchain naming systems (Namecoin's name resolution,
// Blockstack's thin clients) achieve that: download headers only, verify
// cumulative work, and check transaction inclusion with Merkle proofs
// against a header's transaction root.

// TxProof proves a transaction's inclusion in a specific block.
type TxProof struct {
	BlockHash cryptoutil.Hash
	Header    Header
	Tx        *Tx
	Merkle    *cryptoutil.MerkleProof
}

// ProveTx builds an inclusion proof for the transaction with the given ID
// on the best chain, or an error if it is not found.
func (c *Chain) ProveTx(id cryptoutil.Hash) (*TxProof, error) {
	tx, b := c.FindTx(id)
	if tx == nil {
		return nil, fmt.Errorf("chain: tx %s not on best chain", id.Short())
	}
	leaves := make([][]byte, len(b.Txs))
	idx := -1
	for i, t := range b.Txs {
		tid := t.ID()
		leaves[i] = tid[:]
		if tid == id {
			idx = i
		}
	}
	tree, err := cryptoutil.NewMerkleTree(leaves)
	if err != nil {
		return nil, err
	}
	proof, err := tree.Prove(idx)
	if err != nil {
		return nil, err
	}
	return &TxProof{BlockHash: b.Hash(), Header: b.Header, Tx: tx, Merkle: proof}, nil
}

// HeaderChain is a light client: it stores only block headers, validates
// proof-of-work and linkage, tracks cumulative work, and verifies
// transaction inclusion proofs. Its storage footprint is a constant ~120
// bytes per block instead of full blocks — the practical answer to
// §3.1's "endless ledger problem" for name *resolvers* (miners still bear
// the full ledger).
type HeaderChain struct {
	headers map[cryptoutil.Hash]Header
	work    map[cryptoutil.Hash]*big.Int
	head    cryptoutil.Hash
	genesis cryptoutil.Hash
}

// NewHeaderChain creates a light client anchored at the same deterministic
// genesis as NewChain(cfg).
func NewHeaderChain(cfg Config) *HeaderChain {
	genesis := Block{Header: Header{Difficulty: 1}}
	gh := genesis.Hash()
	hc := &HeaderChain{
		headers: map[cryptoutil.Hash]Header{gh: genesis.Header},
		work:    map[cryptoutil.Hash]*big.Int{gh: big.NewInt(0)},
		head:    gh,
		genesis: gh,
	}
	return hc
}

// Errors returned by AddHeader.
var (
	ErrHeaderUnknownParent = errors.New("chain: header has unknown parent")
	ErrHeaderBadPoW        = errors.New("chain: header fails proof of work")
)

// AddHeader validates and connects one header. Difficulty-retarget
// correctness is not re-derived (a light client cannot compute it without
// timestamps of every branch — it has them, but we keep the SPV trust
// model honest and verify PoW, linkage, and monotonic time only).
func (hc *HeaderChain) AddHeader(h Header) error {
	hash := h.Hash()
	if _, ok := hc.headers[hash]; ok {
		return ErrDuplicate
	}
	parent, ok := hc.headers[h.Prev]
	if !ok {
		return ErrHeaderUnknownParent
	}
	if h.Height != parent.Height+1 || h.Time < parent.Time {
		return fmt.Errorf("chain: header %s: bad height/time", hash.Short())
	}
	if !h.MeetsTarget() {
		return ErrHeaderBadPoW
	}
	hc.headers[hash] = h
	hc.work[hash] = new(big.Int).Add(hc.work[h.Prev], Work(h.Difficulty))
	if hc.work[hash].Cmp(hc.work[hc.head]) > 0 {
		hc.head = hash
	}
	return nil
}

// Sync ingests the best-chain headers of a full node, returning how many
// headers were newly connected.
func (hc *HeaderChain) Sync(c *Chain) int {
	added := 0
	for _, b := range c.BestBlocks() {
		if err := hc.AddHeader(b.Header); err == nil {
			added++
		}
	}
	return added
}

// Head returns the best known header and its hash.
func (hc *HeaderChain) Head() (Header, cryptoutil.Hash) { return hc.headers[hc.head], hc.head }

// Height returns the best header height.
func (hc *HeaderChain) Height() uint64 { return hc.headers[hc.head].Height }

// HasHeader reports whether a block hash is known.
func (hc *HeaderChain) HasHeader(h cryptoutil.Hash) bool { _, ok := hc.headers[h]; return ok }

// NumHeaders returns how many headers are stored (all branches).
func (hc *HeaderChain) NumHeaders() int { return len(hc.headers) }

// Confirmations returns how deep a block is under the best header (0 if
// unknown or not an ancestor).
func (hc *HeaderChain) Confirmations(h cryptoutil.Hash) uint64 {
	target, ok := hc.headers[h]
	if !ok {
		return 0
	}
	cur := hc.headers[hc.head]
	curHash := hc.head
	for cur.Height > target.Height {
		curHash = cur.Prev
		cur = hc.headers[curHash]
	}
	if curHash != h {
		return 0
	}
	return hc.headers[hc.head].Height - target.Height + 1
}

// VerifyTx checks a transaction inclusion proof against the light client's
// header set: the header must be known (and therefore PoW-checked), the
// transaction's signature must verify, and the Merkle proof must link the
// transaction ID to the header's root. It returns the confirmation depth.
func (hc *HeaderChain) VerifyTx(p *TxProof) (uint64, error) {
	if p == nil || p.Tx == nil {
		return 0, errors.New("chain: nil tx proof")
	}
	stored, ok := hc.headers[p.BlockHash]
	if !ok {
		return 0, fmt.Errorf("chain: proof block %s unknown to light client", p.BlockHash.Short())
	}
	if stored.Hash() != p.Header.Hash() {
		return 0, errors.New("chain: proof header mismatch")
	}
	if err := p.Tx.CheckSig(); err != nil {
		return 0, err
	}
	id := p.Tx.ID()
	if !cryptoutil.VerifyProof(stored.MerkleRoot, id[:], p.Merkle) {
		return 0, errors.New("chain: merkle proof invalid")
	}
	conf := hc.Confirmations(p.BlockHash)
	if conf == 0 {
		return 0, errors.New("chain: proof block not on light client's best chain")
	}
	return conf, nil
}

// HeaderBytes returns the light client's storage footprint in bytes.
func (hc *HeaderChain) HeaderBytes() int64 {
	var h Header
	return int64(len(h.encode()) * len(hc.headers))
}
