// Package workload generates seed-deterministic synthetic traffic at the
// statistical shape of a million-user population: Zipf-skewed content
// popularity, diurnal request-rate cycles with per-region phase offsets, a
// regional latency/bandwidth matrix, and flash-crowd spikes that make one
// object orders of magnitude hotter at a scheduled virtual instant.
//
// Every experiment before X18 drove uniform synthetic traffic, so the
// paper's §3 claim — single-home-server federation bottlenecks where P2P
// swarms shed load — was assumed, never measured. This package supplies
// the demand side of that measurement; experiment X18 supplies the
// architectures under test.
//
// Determinism. Generators draw only from dedicated SplitMix64 streams
// derived from (seed, salt) via Rand — the same discipline as
// simnet/fault.Rand — never from the shared network stream and never from
// the global math/rand source (scripts/determinism_lint.sh enforces the
// latter). Given the same (seed, config), Generate replays its request
// schedule byte for byte, at any trial-worker count, which is what lets
// X18 sit under the bench gate's exact-match comparison.
//
// Hot paths. A prepared Zipf sampler draws in O(1) with zero allocations
// (Walker/Vose alias method), and a flash-crowd tick (time-varying
// multiplier plus composite draw) is allocation-free too; the root
// alloc_test.go pins both budgets.
package workload

import (
	"math/rand"

	"repro/internal/simnet"
)

// Canonical salts for Rand, so the package's sub-streams are independent
// of each other and of the fault package's scenario streams.
const (
	// SaltStream seeds request-schedule generation (arrival thinning,
	// object draws, client choice). Generate splits it further per region.
	SaltStream = 0x301AD
)

// Rand returns a deterministic RNG stream for workload generation, derived
// from (seed, salt) by SplitMix64 whitening — the same scheme as
// simnet/fault.Rand. The stream is independent of the network's substrate
// and node streams, so workload draws never perturb protocol randomness
// (and vice versa: protocol changes never shift the offered load).
func Rand(seed int64, salt uint64) *rand.Rand {
	return rand.New(simnet.NewSplitMix64(simnet.Mix64(simnet.Mix64(uint64(seed)) ^ salt)))
}
