package workload

import (
	"fmt"
	"time"

	"repro/internal/simnet"
)

// Region describes one geography: the access-link profile its users
// attach with, and the phase offset of its diurnal cycle (a region east
// of the reference peaks earlier in virtual time).
type Region struct {
	Name    string
	Profile simnet.LinkProfile
	Phase   time.Duration
}

// RegionSet is a latency/bandwidth geography: a list of regions plus the
// pairwise extra one-way propagation delay between them. It is applied
// through the existing simnet link machinery — per-node access profiles
// via Node.SetProfile (the same hook fault.Plan.DegradeLinksAt uses) and
// the inter-region delays via the opt-in Network.SetRegionMatrix hook,
// which is default-off and costs existing experiments nothing.
type RegionSet struct {
	Regions []Region
	// Extra[a][b] is the additional one-way delay from a node in region a
	// to a node in region b, on top of both endpoints' profile latency.
	Extra [][]time.Duration
}

// DefaultRegions returns up to four canonical regions spread around the
// globe: home-broadband access links whose base latency grows with
// distance from the reference region, diurnal phases spaced evenly across
// the day, and an inter-region delay matrix that grows ~25 ms per
// region-hop (same-region traffic pays nothing extra). Deterministic — no
// RNG draws.
func DefaultRegions(n int, day time.Duration) RegionSet {
	names := []string{"us-east", "eu-west", "ap-south", "sa-east"}
	if n < 1 || n > len(names) {
		panic(fmt.Sprintf("workload: DefaultRegions supports 1..%d regions, got %d", len(names), n))
	}
	rs := RegionSet{
		Regions: make([]Region, n),
		Extra:   make([][]time.Duration, n),
	}
	for i := 0; i < n; i++ {
		prof := simnet.HomeBroadbandProfile()
		prof.Latency += time.Duration(i) * 5 * time.Millisecond
		rs.Regions[i] = Region{
			Name:    names[i],
			Profile: prof,
			Phase:   day * time.Duration(i) / time.Duration(n),
		}
		rs.Extra[i] = make([]time.Duration, n)
		for j := 0; j < n; j++ {
			if hops := i - j; hops != 0 {
				if hops < 0 {
					hops = -hops
				}
				rs.Extra[i][j] = 20*time.Millisecond + time.Duration(hops)*25*time.Millisecond
			}
		}
	}
	return rs
}

// Assign returns the region of the i-th member of a population: round
// robin, so populations spread evenly and the mapping is position-stable
// across the generator (Generate) and the network side (Apply).
func (rs RegionSet) Assign(i int) int { return i % len(rs.Regions) }

// Apply attaches nodes to their regions in index order: node i gets
// region Assign(i)'s access profile, and the pairwise delay matrix is
// installed on the network. Nodes not listed keep their profiles and fall
// into region 0 for matrix purposes.
func (rs RegionSet) Apply(nw *simnet.Network, nodes []simnet.NodeID) {
	assign := make(map[simnet.NodeID]int, len(nodes))
	for i, id := range nodes {
		r := rs.Assign(i)
		assign[id] = r
		nw.Node(id).SetProfile(rs.Regions[r].Profile)
	}
	nw.SetRegionMatrix(assign, rs.Extra)
}
