package workload

import (
	"math"
	"testing"
	"time"
)

func defaultDiurnal() Diurnal {
	return NewDiurnal(DiurnalConfig{
		Mean: 2.0, Amp: 0.6, Floor: 0.5, Period: 24 * time.Hour,
	})
}

// integrate computes the mean of Rate over one period by midpoint rule.
func integrate(d Diurnal, steps int) float64 {
	p := d.Period()
	var sum float64
	for i := 0; i < steps; i++ {
		t := time.Duration((float64(i) + 0.5) / float64(steps) * float64(p))
		sum += d.Rate(t)
	}
	return sum / float64(steps)
}

// TestDiurnalMeanPreserved: the normalizer makes the time-averaged rate
// equal the configured mean even when the night floor clips the sinusoid
// (Floor 0.5 > 1−Amp 0.4, so the curve is genuinely piecewise here).
func TestDiurnalMeanPreserved(t *testing.T) {
	d := defaultDiurnal()
	if got := integrate(d, 20000); math.Abs(got-d.Mean()) > 0.002*d.Mean() {
		t.Errorf("time-averaged rate %g, configured mean %g", got, d.Mean())
	}
}

// TestDiurnalFloorBinds: the clipped night segment is flat and the rate
// never drops below Mean·Floor/norm.
func TestDiurnalFloorBinds(t *testing.T) {
	d := defaultDiurnal()
	floorRate := d.Rate(18 * time.Hour) // sin bottom: x=0.75 → 1−Amp=0.4 < Floor
	if other := d.Rate(17 * time.Hour); math.Abs(other-floorRate) > 1e-12 {
		t.Errorf("night floor not flat: %g vs %g", other, floorRate)
	}
	min := math.Inf(1)
	for i := 0; i < 1000; i++ {
		if r := d.Rate(time.Duration(i) * d.Period() / 1000); r < min {
			min = r
		}
	}
	if math.Abs(min-floorRate) > 1e-9 {
		t.Errorf("minimum rate %g != floor rate %g", min, floorRate)
	}
}

// TestDiurnalMaxRateBounds: MaxRate dominates every sampled rate and is
// attained at the daytime peak.
func TestDiurnalMaxRateBounds(t *testing.T) {
	d := defaultDiurnal()
	max := 0.0
	for i := 0; i < 4000; i++ {
		if r := d.Rate(time.Duration(i) * d.Period() / 4000); r > max {
			max = r
		}
	}
	if max > d.MaxRate()+1e-9 {
		t.Errorf("sampled max %g exceeds MaxRate %g", max, d.MaxRate())
	}
	if max < 0.99*d.MaxRate() {
		t.Errorf("sampled max %g never approaches MaxRate %g", max, d.MaxRate())
	}
}

// TestDiurnalPhaseShift: a phase offset slides the curve in time:
// shifted.Rate(t) == base.Rate(t+phase).
func TestDiurnalPhaseShift(t *testing.T) {
	base := defaultDiurnal()
	shifted := base.share(1, 6*time.Hour)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 17 * time.Minute
		if a, b := shifted.Rate(at), base.Rate(at+6*time.Hour); math.Abs(a-b) > 1e-12 {
			t.Fatalf("phase shift broken at %v: %g vs %g", at, a, b)
		}
	}
}

// TestDiurnalShare: scaling splits the mean without touching the shape.
func TestDiurnalShare(t *testing.T) {
	base := defaultDiurnal()
	half := base.share(0.5, 0)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 13 * time.Minute
		if a, b := half.Rate(at), base.Rate(at)/2; math.Abs(a-b) > 1e-12 {
			t.Fatalf("share(0.5) at %v: %g vs %g", at, a, b)
		}
	}
	if half.Mean() != base.Mean()/2 {
		t.Errorf("share mean %g, want %g", half.Mean(), base.Mean()/2)
	}
}

// TestDiurnalConstant: Amp 0 with no floor is a flat line at Mean.
func TestDiurnalConstant(t *testing.T) {
	d := NewDiurnal(DiurnalConfig{Mean: 3, Period: time.Hour})
	for i := 0; i < 50; i++ {
		if r := d.Rate(time.Duration(i) * time.Minute); math.Abs(r-3) > 1e-12 {
			t.Fatalf("constant rate drifted: %g", r)
		}
	}
	if d.MaxRate() != 3 {
		t.Errorf("MaxRate %g, want 3", d.MaxRate())
	}
}

// TestDiurnalHighFloor: Floor above the sinusoid peak flattens the whole
// curve; MaxRate must follow the floor, not 1+Amp.
func TestDiurnalHighFloor(t *testing.T) {
	d := NewDiurnal(DiurnalConfig{Mean: 1, Amp: 0.2, Floor: 2, Period: time.Hour})
	for i := 0; i < 50; i++ {
		if r := d.Rate(time.Duration(i) * time.Minute); math.Abs(r-1) > 1e-12 {
			t.Fatalf("flat-floor rate %g, want 1 (normalizer must absorb the floor)", r)
		}
	}
	if math.Abs(d.MaxRate()-1) > 1e-12 {
		t.Errorf("MaxRate %g, want 1", d.MaxRate())
	}
}

// TestDiurnalNegativeTimeWraps: Rate is periodic in both directions.
func TestDiurnalNegativeTimeWraps(t *testing.T) {
	d := defaultDiurnal()
	if a, b := d.Rate(-3*time.Hour), d.Rate(21*time.Hour); math.Abs(a-b) > 1e-12 {
		t.Errorf("negative time broke periodicity: %g vs %g", a, b)
	}
}

// TestDiurnalPanics: invalid configs are rejected.
func TestDiurnalPanics(t *testing.T) {
	for _, cfg := range []DiurnalConfig{
		{Mean: 1, Period: 0},
		{Mean: -1, Period: time.Hour},
		{Mean: 1, Amp: -0.1, Period: time.Hour},
		{Mean: 1, Floor: -0.1, Period: time.Hour},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			NewDiurnal(cfg)
		}()
	}
}
