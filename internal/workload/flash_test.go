package workload

import (
	"math"
	"testing"
	"time"
)

func defaultFlash() Flash {
	return Flash{
		Object: 7,
		Start:  10 * time.Minute,
		Ramp:   2 * time.Minute,
		Peak:   1000,
		Decay:  3 * time.Minute,
	}
}

// TestFlashMultiplierShape: 1 before Start, linear ramp to exactly Peak at
// Start+Ramp, then half-life decay back toward 1.
func TestFlashMultiplierShape(t *testing.T) {
	f := defaultFlash()
	if m := f.Multiplier(0); m != 1 {
		t.Errorf("pre-flash multiplier %g, want 1", m)
	}
	if m := f.Multiplier(f.Start); m != 1 {
		t.Errorf("ramp start multiplier %g, want 1", m)
	}
	if m := f.Multiplier(f.Start + f.Ramp/2); math.Abs(m-(1+(f.Peak-1)/2)) > 1e-9 {
		t.Errorf("mid-ramp multiplier %g, want %g", m, 1+(f.Peak-1)/2)
	}
	if m := f.Multiplier(f.Start + f.Ramp); m != f.Peak {
		t.Errorf("peak multiplier %g, want exactly %g", m, f.Peak)
	}
	// One half-life into the decay, the excess has exactly halved.
	if m := f.Multiplier(f.Start + f.Ramp + f.Decay); math.Abs(m-(1+(f.Peak-1)/2)) > 1e-9 {
		t.Errorf("one-half-life multiplier %g, want %g", m, 1+(f.Peak-1)/2)
	}
	// The spike always decays toward, but never below, baseline.
	prev := math.Inf(1)
	for i := 0; i < 200; i++ {
		at := f.Start + f.Ramp + time.Duration(i)*time.Minute
		m := f.Multiplier(at)
		if m < 1 || m > prev {
			t.Fatalf("decay not monotone toward 1 at %v: %g (prev %g)", at, m, prev)
		}
		prev = m
	}
}

// TestFlashEdgeConfigs: zero ramp jumps straight to Peak; zero decay holds
// it; the zero value is inert.
func TestFlashEdgeConfigs(t *testing.T) {
	jump := Flash{Object: 0, Start: time.Minute, Peak: 10, Decay: time.Minute}
	if m := jump.Multiplier(time.Minute); m != 10 {
		t.Errorf("zero-ramp multiplier at Start %g, want 10", m)
	}
	hold := Flash{Object: 0, Start: time.Minute, Ramp: time.Minute, Peak: 10}
	if m := hold.Multiplier(time.Hour); m != 10 {
		t.Errorf("zero-decay multiplier %g, want held at 10", m)
	}
	var inert Flash
	if inert.Active() {
		t.Error("zero Flash reports active")
	}
	if m := inert.Multiplier(time.Hour); m != 1 {
		t.Errorf("inert multiplier %g, want 1", m)
	}
}

// TestHotZipfRatePreservation: the composite keeps every cold object at
// its baseline absolute rate and multiplies the hot object's by m(t) —
// checked through the WeightFactor/DrawAt identity on empirical draws.
func TestHotZipfRatePreservation(t *testing.T) {
	z := NewZipf(8, 1.1)
	f := defaultFlash()
	h := NewHotZipf(z, f)
	at := f.Start + f.Ramp // peak
	m := f.Multiplier(at)
	w := h.WeightFactor(at)
	if want := 1 + (m-1)*z.P(f.Object); math.Abs(w-want) > 1e-12 {
		t.Fatalf("WeightFactor %g, want %g", w, want)
	}
	if h.MaxWeightFactor() != w {
		t.Errorf("MaxWeightFactor %g, want peak factor %g", h.MaxWeightFactor(), w)
	}
	rng := Rand(11, 0x77)
	const n = 400000
	hotCount := 0
	coldCount := 0 // object 0, the most popular cold object
	for i := 0; i < n; i++ {
		switch h.DrawAt(at, rng) {
		case f.Object:
			hotCount++
		case 0:
			coldCount++
		}
	}
	// Absolute rate of object o = (arrival rate · w) · P_draw(o). With the
	// arrival scale w, the hot object's effective share of baseline-rate
	// units is m·P(hot), and a cold object keeps P(cold).
	hotRate := float64(hotCount) / n * w
	if want := m * z.P(f.Object); math.Abs(hotRate-want) > 0.03*want {
		t.Errorf("hot absolute rate %g baseline-units, want %g", hotRate, want)
	}
	coldRate := float64(coldCount) / n * w
	if want := z.P(0); math.Abs(coldRate-want) > 0.05*want {
		t.Errorf("cold absolute rate %g baseline-units, want %g", coldRate, want)
	}
}

// TestHotZipfInertMatchesBase: with an inert flash, DrawAt is a plain base
// draw with an identical stream — byte-for-byte the same sequence.
func TestHotZipfInertMatchesBase(t *testing.T) {
	z := NewZipf(32, 1.0)
	h := NewHotZipf(z, Flash{})
	a, b := Rand(5, 9), Rand(5, 9)
	for i := 0; i < 5000; i++ {
		if x, y := h.DrawAt(time.Duration(i)*time.Second, a), z.Draw(b); x != y {
			t.Fatalf("inert composite diverged from base at draw %d: %d vs %d", i, x, y)
		}
	}
	if h.MaxWeightFactor() != 1 {
		t.Errorf("inert MaxWeightFactor %g, want 1", h.MaxWeightFactor())
	}
	if h.Base() != z || h.Flash().Active() {
		t.Error("accessors disagree with construction")
	}
}

// TestHotZipfPanicsOnBadObject: a flash aimed outside the catalog is a
// configuration bug, not a runtime surprise.
func TestHotZipfPanicsOnBadObject(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHotZipf(NewZipf(4, 1), Flash{Object: 4, Peak: 10})
}
