package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf is a bounded Zipf(s) sampler over objects {0, …, n-1}: object k is
// drawn with probability (k+1)^-s / H(n,s). Construction is O(n) via the
// Walker/Vose alias method; Draw is O(1) and allocation-free, so a
// prepared sampler can sit on a per-request hot path (the root
// alloc_test.go pins it at 0 allocs/op).
//
// s is the skew exponent: measured content workloads sit around s ≈ 0.9–1.2
// (web caches, IPFS requests in Trautwein et al.), where a handful of
// objects carry most of the demand and the tail is long.
type Zipf struct {
	n     int
	s     float64
	pmf   []float64
	prob  []float64
	alias []int32
}

// NewZipf builds a sampler over n objects with exponent s. n must be ≥ 1
// and s ≥ 0 (s = 0 is uniform).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("workload: NewZipf needs n >= 1, got %d", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("workload: NewZipf needs s >= 0, got %v", s))
	}
	z := &Zipf{
		n:     n,
		s:     s,
		pmf:   make([]float64, n),
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	var h float64
	for k := 0; k < n; k++ {
		z.pmf[k] = math.Pow(float64(k+1), -s)
		h += z.pmf[k]
	}
	for k := range z.pmf {
		z.pmf[k] /= h
	}

	// Vose's stable alias construction: split columns into under- and
	// over-full, pair them off so every column holds its own probability
	// plus one alias.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range z.pmf {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s0 := small[len(small)-1]
		small = small[:len(small)-1]
		l0 := large[len(large)-1]
		large = large[:len(large)-1]
		z.prob[s0] = scaled[s0]
		z.alias[s0] = l0
		scaled[l0] += scaled[s0] - 1
		if scaled[l0] < 1 {
			small = append(small, l0)
		} else {
			large = append(large, l0)
		}
	}
	// Floating-point residue: leftover columns are exactly full.
	for _, i := range large {
		z.prob[i] = 1
	}
	for _, i := range small {
		z.prob[i] = 1
	}
	return z
}

// N returns the number of objects.
func (z *Zipf) N() int { return z.n }

// S returns the skew exponent.
func (z *Zipf) S() float64 { return z.s }

// P returns the exact probability of object i.
func (z *Zipf) P(i int) float64 { return z.pmf[i] }

// Draw samples one object from rng: a fair column pick plus one biased
// coin against the column's alias. Two RNG draws, zero allocations.
func (z *Zipf) Draw(rng *rand.Rand) int {
	i := rng.Intn(z.n)
	if rng.Float64() < z.prob[i] {
		return i
	}
	return int(z.alias[i])
}
