package workload

import (
	"fmt"
	"math"
	"time"
)

// DiurnalConfig parameterizes a daily request-rate cycle.
type DiurnalConfig struct {
	// Mean is the average request rate in requests/sec over one full
	// period — the configured mean the generated schedule must hit
	// (property-tested to within 1%).
	Mean float64
	// Amp is the sinusoidal swing around the mean in [0, ∞): the raw shape
	// is 1 + Amp·sin(2πx) over one period.
	Amp float64
	// Floor clamps the raw shape from below (as a multiple of the
	// pre-normalization mean level 1): traffic never quite dies at night.
	// With Floor > 1-Amp the clamp binds and the curve is genuinely
	// piecewise — a flat night floor joined to a daytime sinusoid.
	Floor float64
	// Period is the length of one virtual "day".
	Period time.Duration
	// Phase shifts the cycle: a region Phase east of UTC peaks earlier.
	Phase time.Duration
}

// Diurnal is a piecewise-sinusoid rate function over virtual time. Because
// the night floor clips the sine, the raw shape's mean exceeds 1; the
// constructor computes the normalization once (4096-point midpoint rule)
// so that the integral of Rate over any whole period equals Mean·Period —
// the property the diurnal-integral gate in property_test.go asserts to
// within 1%.
type Diurnal struct {
	cfg  DiurnalConfig
	norm float64
}

// NewDiurnal validates and normalizes a diurnal cycle.
func NewDiurnal(cfg DiurnalConfig) Diurnal {
	if cfg.Period <= 0 {
		panic(fmt.Sprintf("workload: NewDiurnal needs Period > 0, got %v", cfg.Period))
	}
	if cfg.Mean < 0 || cfg.Amp < 0 || cfg.Floor < 0 {
		panic("workload: NewDiurnal needs Mean, Amp, Floor >= 0")
	}
	d := Diurnal{cfg: cfg}
	const steps = 4096
	var sum float64
	for i := 0; i < steps; i++ {
		sum += d.shape((float64(i) + 0.5) / steps)
	}
	d.norm = sum / steps
	if d.norm <= 0 {
		d.norm = 1 // Amp = Floor = 0 degenerates to a constant rate
	}
	return d
}

// shape is the raw (un-normalized) daily curve at day-fraction x ∈ [0, 1).
func (d Diurnal) shape(x float64) float64 {
	v := 1 + d.cfg.Amp*math.Sin(2*math.Pi*x)
	if v < d.cfg.Floor {
		v = d.cfg.Floor
	}
	return v
}

// Rate returns the instantaneous request rate (requests/sec) at virtual
// time t. Allocation-free.
func (d Diurnal) Rate(t time.Duration) float64 {
	x := math.Mod(float64(t+d.cfg.Phase)/float64(d.cfg.Period), 1)
	if x < 0 {
		x++
	}
	return d.cfg.Mean * d.shape(x) / d.norm
}

// Mean returns the configured mean rate.
func (d Diurnal) Mean() float64 { return d.cfg.Mean }

// Period returns the configured day length.
func (d Diurnal) Period() time.Duration { return d.cfg.Period }

// MaxRate returns the supremum of Rate over a period — the thinning bound
// Generate rejects against.
func (d Diurnal) MaxRate() float64 {
	peak := 1 + d.cfg.Amp
	if d.cfg.Floor > peak {
		peak = d.cfg.Floor
	}
	return d.cfg.Mean * peak / d.norm
}

// share returns a copy carrying frac of the mean rate with an extra phase
// offset — one region's slice of the population-wide cycle. The
// normalization is shape-only, so it carries over unchanged.
func (d Diurnal) share(frac float64, extraPhase time.Duration) Diurnal {
	out := d
	out.cfg.Mean *= frac
	out.cfg.Phase += extraPhase
	return out
}
