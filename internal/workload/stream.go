package workload

import (
	"fmt"
	"sort"
	"time"
)

// Request is one generated request: client Client asks for object Object
// at virtual time At (relative to the start of the measured window).
type Request struct {
	At     time.Duration
	Object int
	Client int
}

// StreamConfig assembles the full engine: who requests (Clients, homed
// into Regions), what they request (Pop, skewed by Flash), and when
// (Rate, phase-shifted per region; arrivals are a thinned Poisson
// process off a dedicated RNG stream).
type StreamConfig struct {
	// Seed and Salt pick the generator's RNG stream via Rand. Salt 0 uses
	// SaltStream; pass a distinct salt to draw an independent schedule
	// from the same seed.
	Seed int64
	Salt uint64
	// Clients is the requester population size; each Request carries a
	// client index in [0, Clients).
	Clients int
	// Horizon bounds request times: every At is in [0, Horizon).
	Horizon time.Duration
	// Pop is the content-popularity sampler (required).
	Pop *Zipf
	// Rate is the population-wide arrival-rate cycle (required: build
	// with NewDiurnal; Amp 0 gives a steady rate).
	Rate Diurnal
	// Flash optionally spikes one object; the zero value is inert.
	Flash Flash
	// Regions optionally homes clients round-robin into regions: each
	// region runs its own arrival process carrying its population share
	// of the mean rate, phase-shifted by the region's diurnal offset.
	Regions *RegionSet
}

// Generate produces the deterministic request schedule: time-ordered,
// identical for the same (Seed, config) at any call site or worker count.
// Arrivals are drawn by Poisson thinning against the analytic rate bound,
// objects by the flash-aware composite sampler, clients uniformly within
// the issuing region.
func Generate(cfg StreamConfig) []Request {
	if cfg.Clients < 1 || cfg.Horizon <= 0 || cfg.Pop == nil {
		panic(fmt.Sprintf("workload: Generate needs Clients >= 1, Horizon > 0 and Pop, got %d/%v/%v",
			cfg.Clients, cfg.Horizon, cfg.Pop != nil))
	}
	salt := cfg.Salt
	if salt == 0 {
		salt = SaltStream
	}
	nR := 1
	if cfg.Regions != nil {
		nR = len(cfg.Regions.Regions)
	}
	members := make([][]int, nR)
	for c := 0; c < cfg.Clients; c++ {
		r := 0
		if cfg.Regions != nil {
			r = cfg.Regions.Assign(c)
		}
		members[r] = append(members[r], c)
	}
	hot := NewHotZipf(cfg.Pop, cfg.Flash)
	maxW := hot.MaxWeightFactor()

	var all []Request
	for r := 0; r < nR; r++ {
		if len(members[r]) == 0 {
			continue
		}
		share := float64(len(members[r])) / float64(cfg.Clients)
		var phase time.Duration
		if cfg.Regions != nil {
			phase = cfg.Regions.Regions[r].Phase
		}
		d := cfg.Rate.share(share, phase)
		lamMax := d.MaxRate() * maxW
		if lamMax <= 0 {
			continue
		}
		// One independent sub-stream per region: adding a region never
		// shifts another region's draws.
		rng := Rand(cfg.Seed, salt^(uint64(r+1)*0x9E3779B97F4A7C15))
		var t time.Duration
		for {
			t += time.Duration(rng.ExpFloat64() / lamMax * float64(time.Second))
			if t >= cfg.Horizon {
				break
			}
			if lam := d.Rate(t) * hot.WeightFactor(t); rng.Float64()*lamMax >= lam {
				continue
			}
			all = append(all, Request{
				At:     t,
				Object: hot.DrawAt(t, rng),
				Client: members[r][rng.Intn(len(members[r]))],
			})
		}
	}
	// Stable by time: per-region order is already chronological and
	// cross-region ties break by region index — fully deterministic.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}
