package workload

import (
	"math"
	"testing"
)

// TestZipfPMF: probabilities are a proper, monotone-decreasing
// distribution following (k+1)^-s up to the shared normalizer.
func TestZipfPMF(t *testing.T) {
	z := NewZipf(24, 1.1)
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.P(i)
		if i > 0 && z.P(i) > z.P(i-1) {
			t.Errorf("pmf not monotone: P(%d)=%g > P(%d)=%g", i, z.P(i), i-1, z.P(i-1))
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %g, want 1", sum)
	}
	if got, want := z.P(1)/z.P(0), math.Pow(2, -1.1); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(1)/P(0) = %g, want 2^-1.1 = %g", got, want)
	}
	if z.S() != 1.1 {
		t.Errorf("S() = %g", z.S())
	}
}

// TestZipfUniform: s = 0 degenerates to the uniform distribution.
func TestZipfUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.P(i)-0.1) > 1e-12 {
			t.Fatalf("P(%d) = %g, want 0.1", i, z.P(i))
		}
	}
}

// TestZipfDrawMatchesPMF: empirical frequencies from the alias table track
// the exact pmf (the chi-square gate in the root property suite tightens
// this; here a coarse per-object check suffices).
func TestZipfDrawMatchesPMF(t *testing.T) {
	z := NewZipf(16, 1.0)
	rng := Rand(7, 0x21F)
	const n = 200000
	counts := make([]int, z.N())
	for i := 0; i < n; i++ {
		o := z.Draw(rng)
		if o < 0 || o >= z.N() {
			t.Fatalf("draw %d outside [0, %d)", o, z.N())
		}
		counts[o]++
	}
	for i, c := range counts {
		got := float64(c) / n
		want := z.P(i)
		if math.Abs(got-want) > 0.05*want+0.002 {
			t.Errorf("object %d: empirical %g vs exact %g", i, got, want)
		}
	}
}

// TestZipfDeterministicReplay: the same (seed, salt) stream reproduces the
// same draw sequence — the generator-replay contract `make race` runs.
func TestZipfDeterministicReplay(t *testing.T) {
	z := NewZipf(64, 1.2)
	a, b := Rand(42, 0xABC), Rand(42, 0xABC)
	for i := 0; i < 10000; i++ {
		if x, y := z.Draw(a), z.Draw(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestZipfSingleton: n = 1 always draws object 0.
func TestZipfSingleton(t *testing.T) {
	z := NewZipf(1, 1.1)
	rng := Rand(1, 1)
	for i := 0; i < 100; i++ {
		if z.Draw(rng) != 0 {
			t.Fatal("singleton drew nonzero")
		}
	}
}

// TestZipfPanics: invalid construction is rejected loudly.
func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
		func() { NewZipf(10, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
