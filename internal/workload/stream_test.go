package workload

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func defaultStream() StreamConfig {
	return StreamConfig{
		Seed:    42,
		Clients: 30,
		Horizon: 2000 * time.Second,
		Pop:     NewZipf(24, 1.1),
		Rate: NewDiurnal(DiurnalConfig{
			Mean: 2.0, Amp: 0.6, Floor: 0.5, Period: 500 * time.Second,
		}),
	}
}

// TestGenerateOrderedAndBounded: the schedule is time-sorted and every
// field stays inside its configured range.
func TestGenerateOrderedAndBounded(t *testing.T) {
	cfg := defaultStream()
	reqs := Generate(cfg)
	if len(reqs) == 0 {
		t.Fatal("empty schedule")
	}
	for i, r := range reqs {
		if r.At < 0 || r.At >= cfg.Horizon {
			t.Fatalf("request %d at %v outside [0, %v)", i, r.At, cfg.Horizon)
		}
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, r.At, reqs[i-1].At)
		}
		if r.Client < 0 || r.Client >= cfg.Clients {
			t.Fatalf("request %d client %d outside [0, %d)", i, r.Client, cfg.Clients)
		}
		if r.Object < 0 || r.Object >= cfg.Pop.N() {
			t.Fatalf("request %d object %d outside [0, %d)", i, r.Object, cfg.Pop.N())
		}
	}
}

// TestGenerateReplaysIdentically: same (seed, config) → byte-identical
// schedule, every call site, every time. This is the replay contract the
// race suite exercises; distinct seeds or salts must diverge.
func TestGenerateReplaysIdentically(t *testing.T) {
	cfg := defaultStream()
	cfg.Flash = Flash{Object: 23, Start: 800 * time.Second, Ramp: 100 * time.Second, Peak: 400, Decay: 150 * time.Second}
	rs := DefaultRegions(3, cfg.Rate.Period())
	cfg.Regions = &rs
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	other := cfg
	other.Seed = 43
	if reflect.DeepEqual(a, Generate(other)) {
		t.Error("distinct seeds produced identical schedules")
	}
	salted := cfg
	salted.Salt = 0xBEEF
	if reflect.DeepEqual(a, Generate(salted)) {
		t.Error("distinct salts produced identical schedules")
	}
}

// TestGenerateCountMatchesMean: over whole diurnal periods the thinned
// process realizes Mean·Horizon arrivals (±5%, ~4σ at this volume).
func TestGenerateCountMatchesMean(t *testing.T) {
	cfg := defaultStream() // 4 whole periods; mean preserved by normalizer
	want := cfg.Rate.Mean() * cfg.Horizon.Seconds()
	got := float64(len(Generate(cfg)))
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("generated %g requests, want %g ± 5%%", got, want)
	}
}

// TestGenerateFlashInflatesHotShare: during the spike the hot object
// dominates the schedule; before the spike it sits at its baseline share.
func TestGenerateFlashInflatesHotShare(t *testing.T) {
	cfg := defaultStream()
	hotObj := 23 // least popular object goes viral
	cfg.Flash = Flash{Object: hotObj, Start: 1000 * time.Second, Ramp: 100 * time.Second, Peak: 1000, Decay: 200 * time.Second}
	reqs := Generate(cfg)
	var preTotal, preHot, spikeTotal, spikeHot float64
	spikeEnd := cfg.Flash.Start + cfg.Flash.Ramp + cfg.Flash.Decay
	for _, r := range reqs {
		switch {
		case r.At < cfg.Flash.Start:
			preTotal++
			if r.Object == hotObj {
				preHot++
			}
		case r.At < spikeEnd:
			spikeTotal++
			if r.Object == hotObj {
				spikeHot++
			}
		}
	}
	baseP := cfg.Pop.P(hotObj)
	if pre := preHot / preTotal; pre > 5*baseP+0.01 {
		t.Errorf("pre-flash hot share %g, want ≈ baseline %g", pre, baseP)
	}
	if spike := spikeHot / spikeTotal; spike < 0.5 {
		t.Errorf("in-spike hot share %g, want > 0.5 (peak ×%g on P=%g)", spike, cfg.Flash.Peak, baseP)
	}
	// The crowd is extra demand: the spike window must carry more requests
	// than the same-length window before the flash.
	preWindow := 0.0
	for _, r := range reqs {
		if r.At >= cfg.Flash.Start-(spikeEnd-cfg.Flash.Start) && r.At < cfg.Flash.Start {
			preWindow++
		}
	}
	if spikeTotal < 1.5*preWindow {
		t.Errorf("spike window %g requests vs %g before — flash demand not additive", spikeTotal, preWindow)
	}
}

// TestGenerateRegionsSplitLoad: with regions installed, each region's
// round-robin membership carries its share of the total and only issues
// its own clients.
func TestGenerateRegionsSplitLoad(t *testing.T) {
	cfg := defaultStream()
	rs := DefaultRegions(3, cfg.Rate.Period())
	cfg.Regions = &rs
	reqs := Generate(cfg)
	counts := make([]float64, 3)
	for _, r := range reqs {
		counts[rs.Assign(r.Client)]++
	}
	total := float64(len(reqs))
	for r, c := range counts {
		if share := c / total; math.Abs(share-1.0/3) > 0.05 {
			t.Errorf("region %d carries %g of the load, want ≈ 1/3", r, share)
		}
	}
	if want := cfg.Rate.Mean() * cfg.Horizon.Seconds(); math.Abs(total-want) > 0.08*want {
		t.Errorf("regional split changed total volume: %g vs %g", total, want)
	}
}

// TestGeneratePanics: incomplete configs are rejected.
func TestGeneratePanics(t *testing.T) {
	base := defaultStream()
	for name, mut := range map[string]func(*StreamConfig){
		"no clients": func(c *StreamConfig) { c.Clients = 0 },
		"no horizon": func(c *StreamConfig) { c.Horizon = 0 },
		"no pop":     func(c *StreamConfig) { c.Pop = nil },
	} {
		cfg := base
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Generate(cfg)
		}()
	}
}
