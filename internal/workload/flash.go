package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Flash models a flash crowd: at a scheduled virtual instant one object
// becomes up to Peak× hotter than its baseline popularity (~10³× in X18),
// ramping up linearly and decaying exponentially — the shape of a link
// going viral and then falling off the front page.
//
// The zero value (Peak ≤ 1) is inert: Multiplier is the constant 1 and
// composite samplers built on it reduce to their base distribution.
type Flash struct {
	// Object is the index of the object that goes viral.
	Object int
	// Start is the virtual time the spike begins.
	Start time.Duration
	// Ramp is how long the multiplier takes to climb linearly from 1 to
	// Peak. Zero means an instantaneous jump.
	Ramp time.Duration
	// Peak is the multiplier on the object's baseline request rate at the
	// top of the spike. Peak ≤ 1 disables the flash entirely.
	Peak float64
	// Decay is the post-peak half-life: every Decay after the ramp tops
	// out, the excess (Multiplier − 1) halves. Zero or negative holds the
	// multiplier at Peak for the rest of the run.
	Decay time.Duration
}

// Active reports whether the flash does anything at all.
func (f Flash) Active() bool { return f.Peak > 1 }

// Multiplier returns the object's popularity multiplier at virtual time t:
// 1 before Start, a linear ramp to exactly Peak at Start+Ramp, then
// exponential decay with half-life Decay back toward 1. Allocation-free —
// this is the "flash-crowd tick" the root alloc gate pins.
func (f Flash) Multiplier(t time.Duration) float64 {
	if !f.Active() || t < f.Start {
		return 1
	}
	dt := t - f.Start
	if f.Ramp > 0 && dt < f.Ramp {
		return 1 + (f.Peak-1)*float64(dt)/float64(f.Ramp)
	}
	if f.Decay <= 0 {
		return f.Peak
	}
	dt -= f.Ramp
	return 1 + (f.Peak-1)*math.Exp2(-float64(dt)/float64(f.Decay))
}

// HotZipf composes a base Zipf popularity with a flash-crowd multiplier on
// one object. The composition preserves per-object absolute rates: scale
// the overall arrival rate by WeightFactor(t) and draw objects with
// DrawAt(t), and every cold object keeps exactly its baseline request
// rate while the hot object's rate is exactly Multiplier(t)× baseline.
type HotZipf struct {
	base *Zipf
	f    Flash
	hotP float64 // base probability of the flash object
}

// NewHotZipf prepares the composite sampler. An inert Flash (Peak ≤ 1)
// yields a sampler identical to the base.
func NewHotZipf(base *Zipf, f Flash) *HotZipf {
	h := &HotZipf{base: base, f: f}
	if f.Active() {
		if f.Object < 0 || f.Object >= base.N() {
			panic(fmt.Sprintf("workload: flash object %d outside catalog [0, %d)", f.Object, base.N()))
		}
		h.hotP = base.P(f.Object)
	}
	return h
}

// Base returns the underlying Zipf sampler.
func (h *HotZipf) Base() *Zipf { return h.base }

// Flash returns the spike configuration.
func (h *HotZipf) Flash() Flash { return h.f }

// WeightFactor returns the total-demand scale at time t:
// 1 + (Multiplier(t)−1)·P(hot). Multiplying the base arrival rate by it
// models the crowd as *extra* traffic (new requesters showing up), not a
// redistribution of existing traffic.
func (h *HotZipf) WeightFactor(t time.Duration) float64 {
	return 1 + (h.f.Multiplier(t)-1)*h.hotP
}

// MaxWeightFactor returns the supremum of WeightFactor — the thinning
// bound Generate rejects against.
func (h *HotZipf) MaxWeightFactor() float64 {
	if !h.f.Active() {
		return 1
	}
	return 1 + (h.f.Peak-1)*h.hotP
}

// DrawAt samples one object at virtual time t: with probability
// excess/(1+excess) the hot object directly (the flash crowd's share of
// total demand, excess = (m(t)−1)·P(hot)), otherwise a plain base draw —
// which still includes the hot object at its baseline share. O(1), zero
// allocations.
func (h *HotZipf) DrawAt(t time.Duration, rng *rand.Rand) int {
	if m := h.f.Multiplier(t); m > 1 {
		extra := (m - 1) * h.hotP
		if rng.Float64()*(1+extra) < extra {
			return h.f.Object
		}
	}
	return h.base.Draw(rng)
}
