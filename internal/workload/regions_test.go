package workload

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestDefaultRegionsShape: canonical geography is well-formed — latency
// grows away from the reference, phases split the day evenly, and the
// delay matrix charges per region-hop with a free diagonal.
func TestDefaultRegionsShape(t *testing.T) {
	day := 24 * time.Hour
	rs := DefaultRegions(4, day)
	if len(rs.Regions) != 4 || len(rs.Extra) != 4 {
		t.Fatalf("got %d regions, %d matrix rows", len(rs.Regions), len(rs.Extra))
	}
	base := simnet.HomeBroadbandProfile()
	for i, r := range rs.Regions {
		if want := base.Latency + time.Duration(i)*5*time.Millisecond; r.Profile.Latency != want {
			t.Errorf("region %d latency %v, want %v", i, r.Profile.Latency, want)
		}
		if want := day * time.Duration(i) / 4; r.Phase != want {
			t.Errorf("region %d phase %v, want %v", i, r.Phase, want)
		}
		for j := range rs.Regions {
			hops := i - j
			if hops < 0 {
				hops = -hops
			}
			want := time.Duration(0)
			if hops > 0 {
				want = 20*time.Millisecond + time.Duration(hops)*25*time.Millisecond
			}
			if rs.Extra[i][j] != want {
				t.Errorf("Extra[%d][%d] = %v, want %v", i, j, rs.Extra[i][j], want)
			}
		}
	}
	for _, n := range []int{0, 5} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DefaultRegions(%d) should panic", n)
				}
			}()
			DefaultRegions(n, day)
		}()
	}
}

// TestAssignRoundRobin: position-stable round-robin homing.
func TestAssignRoundRobin(t *testing.T) {
	rs := DefaultRegions(3, time.Hour)
	for i := 0; i < 12; i++ {
		if rs.Assign(i) != i%3 {
			t.Fatalf("Assign(%d) = %d", i, rs.Assign(i))
		}
	}
}

// TestApplyInstallsGeography: Apply sets each node's access profile and
// routes cross-region messages through the (possibly asymmetric) delay
// matrix. Zero-jitter, zero-loss profiles make delivery times exact:
// one-way delay = src latency + dst latency + Extra[src][dst].
func TestApplyInstallsGeography(t *testing.T) {
	clean := simnet.LinkProfile{Latency: 10 * time.Millisecond, UplinkBps: 1e9, DownlinkBps: 1e9}
	rs := RegionSet{
		Regions: []Region{{Name: "a", Profile: clean}, {Name: "b", Profile: clean}},
		Extra: [][]time.Duration{
			{0, 30 * time.Millisecond},
			{70 * time.Millisecond, 0},
		},
	}
	nw := simnet.New(1)
	n0 := nw.AddNode() // region 0
	n1 := nw.AddNode() // region 1
	n2 := nw.AddNode() // region 0 again (round robin)
	rs.Apply(nw, []simnet.NodeID{n0.ID(), n1.ID(), n2.ID()})

	for i, n := range []*simnet.Node{n0, n1, n2} {
		if n.Profile() != clean {
			t.Errorf("node %d profile not applied", i)
		}
	}
	got := map[string]time.Duration{}
	recv := func(name string, n *simnet.Node) {
		n.Handle("ping", func(simnet.Message) { got[name] = nw.Now() })
	}
	recv("0to1", n1)
	recv("1to0", n0)
	recv("0to0", n2)
	n0.Send(n1.ID(), "ping", nil, 0)
	nw.RunAll()
	if want := 10*time.Millisecond + 10*time.Millisecond + 30*time.Millisecond; got["0to1"] != want {
		t.Errorf("0→1 delivered at %v, want %v", got["0to1"], want)
	}
	start := nw.Now()
	n1.Send(n0.ID(), "ping", nil, 0)
	nw.RunAll()
	if want := start + 90*time.Millisecond; got["1to0"] != want {
		t.Errorf("1→0 delivered at %v, want %v (asymmetric matrix)", got["1to0"], want)
	}
	start = nw.Now()
	n0.Send(n2.ID(), "ping", nil, 0)
	nw.RunAll()
	if want := start + 20*time.Millisecond; got["0to0"] != want {
		t.Errorf("same-region delivered at %v, want %v (no extra)", got["0to0"], want)
	}
}
