package replic

import (
	"math"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func simnetID(i int) simnet.NodeID { return simnet.NodeID(i) }

func h(b byte) cryptoutil.Hash {
	var x cryptoutil.Hash
	x[0] = b
	return x
}

func TestRateHalvesPerHalfLife(t *testing.T) {
	r := NewRate(10 * time.Second)
	r.Observe(0)
	for i, want := range []float64{1, 0.5, 0.25, 0.125} {
		at := time.Duration(i) * 10 * time.Second
		if got := r.Value(at); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Value(%v) = %g, want %g", at, got, want)
		}
	}
	// Value is non-mutating: asking about the future did not decay state.
	if r.Value(0) != 1 {
		t.Fatalf("Value mutated the counter: Value(0) = %g after future reads", r.Value(0))
	}
}

func TestRateAccumulates(t *testing.T) {
	r := NewRate(10 * time.Second)
	r.Observe(0)
	r.Observe(10 * time.Second) // the first observation has halved by now
	if got := r.Value(10 * time.Second); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Value = %g, want 1.5", got)
	}
	// Same-instant and out-of-order adds accumulate without decay.
	r.AddAt(5*time.Second, 1)
	if got := r.Value(10 * time.Second); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("after out-of-order add, Value = %g, want 2.5", got)
	}
}

func TestMergeCommutative(t *testing.T) {
	a := NewRate(30 * time.Second)
	b := NewRate(30 * time.Second)
	a.Observe(0)
	a.Observe(7 * time.Second)
	b.Observe(3 * time.Second)
	b.AddAt(19*time.Second, 2.5)

	ab := Merge(a, b)
	ba := Merge(b, a)
	if ab != ba {
		t.Fatalf("Merge not commutative: %+v vs %+v", ab, ba)
	}
	// The merged counter equals a single counter that saw both streams.
	both := NewRate(30 * time.Second)
	both.Observe(0)
	both.Observe(3 * time.Second)
	both.Observe(7 * time.Second)
	both.AddAt(19*time.Second, 2.5)
	if math.Abs(ab.Value(60*time.Second)-both.Value(60*time.Second)) > 1e-12 {
		t.Fatalf("merged %g != combined-stream %g", ab.Value(60*time.Second), both.Value(60*time.Second))
	}
}

func TestMergeHalfLifeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched half-lives did not panic")
		}
	}()
	Merge(NewRate(time.Second), NewRate(2*time.Second))
}

func TestLocalRateRecoversSteadyStream(t *testing.T) {
	// A constant stream of q req/s accumulates q·HalfLife/ln2 of mass at
	// equilibrium; LocalRate divides that back out and should recover q.
	d := NewDemand(30*time.Second, 1)
	obj := h(1)
	const q = 4.0 // req/s
	step := time.Duration(float64(time.Second) / q)
	var now time.Duration
	for now = 0; now < 10*30*time.Second; now += step {
		d.Observe(obj, 0, now)
	}
	got := d.LocalRate(obj, now)
	if math.Abs(got-q)/q > 0.05 {
		t.Fatalf("LocalRate = %g req/s, want ~%g (±5%%)", got, q)
	}
	if d.LocalRate(h(9), now) != 0 {
		t.Fatal("LocalRate for an unseen object should be 0")
	}
}

func TestAdvertReplacesNotAccumulates(t *testing.T) {
	d := NewDemand(30*time.Second, 2)
	obj := h(2)
	// The same holder re-advertising every tick must not double count.
	for i := 0; i < 10; i++ {
		d.Advert(obj, 7, 2.0, []float64{1.5, 0.5}, time.Duration(i)*time.Second)
	}
	if got := d.SwarmRate(obj, 9*time.Second); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("SwarmRate after 10 re-adverts = %g, want 2.0", got)
	}
	// A second holder's advert adds, in holder-id-sorted order.
	d.Advert(obj, 3, 1.0, []float64{0, 1}, 9*time.Second)
	if got := d.SwarmRate(obj, 9*time.Second); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("SwarmRate with two holders = %g, want 3.0", got)
	}
	// Adverts decay on the shared half-life.
	if got := d.SwarmRate(obj, 9*time.Second+30*time.Second); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("SwarmRate one half-life later = %g, want 1.5", got)
	}
}

func TestAdvertOrderIndependent(t *testing.T) {
	mk := func(order []int) float64 {
		d := NewDemand(30*time.Second, 2)
		obj := h(3)
		rates := map[int]float64{4: 1.25, 9: 0.625, 2: 2.5}
		for _, id := range order {
			d.Advert(obj, simnetID(id), rates[id], []float64{rates[id], 0}, 5*time.Second)
		}
		return d.SwarmRate(obj, 40*time.Second)
	}
	a := mk([]int{4, 9, 2})
	b := mk([]int{2, 4, 9})
	c := mk([]int{9, 2, 4})
	if a != b || b != c {
		t.Fatalf("SwarmRate depends on advert arrival order: %g %g %g", a, b, c)
	}
}

func TestDropHolder(t *testing.T) {
	d := NewDemand(30*time.Second, 1)
	obj := h(4)
	d.Advert(obj, 5, 1.0, []float64{1}, 0)
	d.Advert(obj, 6, 2.0, []float64{2}, 0)
	d.DropHolder(obj, 5)
	if got := d.SwarmRate(obj, 0); got != 2.0 {
		t.Fatalf("SwarmRate after DropHolder = %g, want 2.0", got)
	}
	d.DropHolder(obj, 99) // unknown holder is a no-op
	d.DropHolder(h(9), 6) // unknown object is a no-op
}

func TestRegionRates(t *testing.T) {
	d := NewDemand(30*time.Second, 3)
	obj := h(5)
	// Local: heavy in region 1.
	for i := 0; i < 8; i++ {
		d.Observe(obj, 1, time.Duration(i)*time.Second)
	}
	d.Observe(obj, 0, 7*time.Second)
	// Out-of-range regions are dropped, not misfiled.
	d.Observe(obj, -1, 7*time.Second)
	d.Observe(obj, 99, 7*time.Second)
	// Remote: heavy in region 2.
	d.Advert(obj, 9, 5.0, []float64{0, 0, 5}, 7*time.Second)
	dst := make([]float64, 3)
	d.RegionRates(obj, 7*time.Second, dst)
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("RegionRates = %v, want region2 > region1 > region0", dst)
	}
	d.LocalRegionRates(obj, 7*time.Second, dst)
	if dst[2] != 0 || !(dst[1] > dst[0]) {
		t.Fatalf("LocalRegionRates = %v, want remote excluded and region1 > region0", dst)
	}
	if d.Regions() != 3 {
		t.Fatalf("Regions() = %d", d.Regions())
	}
}

func TestTickPrunesDecayedState(t *testing.T) {
	d := NewDemand(time.Second, 1)
	hot, cold := h(6), h(7)
	d.Observe(cold, 0, 0)
	d.Advert(cold, 3, 1.0, []float64{1}, 0)
	d.Observe(hot, 0, 0)
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	// 60 half-lives on: cold's mass is ~1e-18, far below the prune floor.
	later := 60 * time.Second
	d.Observe(hot, 0, later)
	d.Tick(later)
	if d.Len() != 1 {
		t.Fatalf("Len after prune = %d, want 1 (cold object forgotten)", d.Len())
	}
	if d.LocalRate(hot, later) == 0 {
		t.Fatal("prune dropped a live object")
	}
}
