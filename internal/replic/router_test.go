package replic

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// twoRegionRouter builds a router for a client in region 0 of a two-region
// geography 80ms apart, with nodes 1,3 in region 0 and 2,4 in region 1.
func twoRegionRouter(srtt func(simnet.NodeID) (time.Duration, bool)) *Router {
	regionOf := map[simnet.NodeID]int{1: 0, 2: 1, 3: 0, 4: 1}
	extra := [][]time.Duration{
		{0, 80 * time.Millisecond},
		{80 * time.Millisecond, 0},
	}
	return NewRouter(0, regionOf, extra, srtt)
}

func TestRouterEstimateMatrixFallback(t *testing.T) {
	r := twoRegionRouter(nil)
	if got := r.Estimate(1); got != accessHop {
		t.Fatalf("same-region estimate = %v, want the %v access constant", got, accessHop)
	}
	if got := r.Estimate(2); got != accessHop+80*time.Millisecond {
		t.Fatalf("cross-region estimate = %v, want %v", got, accessHop+80*time.Millisecond)
	}
	// Flat geography: all matrix estimates collapse to the constant.
	flat := NewRouter(0, map[simnet.NodeID]int{}, nil, nil)
	if flat.Estimate(7) != accessHop {
		t.Fatalf("flat-geography estimate = %v", flat.Estimate(7))
	}
}

func TestRouterMeasuredSRTTOverridesMatrix(t *testing.T) {
	// Node 2 is cross-region by the matrix but measured fast; node 1 is
	// same-region but measured slow. Measurement wins both ways.
	srtt := func(id simnet.NodeID) (time.Duration, bool) {
		switch id {
		case 1:
			return 400 * time.Millisecond, true
		case 2:
			return 20 * time.Millisecond, true
		}
		return 0, false
	}
	r := twoRegionRouter(srtt)
	if got := r.Estimate(1); got != 200*time.Millisecond {
		t.Fatalf("measured estimate = %v, want SRTT/2 = 200ms", got)
	}
	ranked := r.Rank([]simnet.NodeID{1, 2, 3, 4})
	// 2 measured at 10ms one-way, 3 matrix 5ms, 4 matrix 85ms, 1 measured 200ms.
	want := []simnet.NodeID{3, 2, 4, 1}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("ranked = %v, want %v", ranked, want)
		}
	}
}

func TestRouterRankTotalOrder(t *testing.T) {
	r := twoRegionRouter(nil)
	// Every starting permutation of the candidate set ranks identically:
	// matrix order first (region 0 before region 1), node id on ties.
	want := []simnet.NodeID{1, 3, 2, 4}
	perms := [][]simnet.NodeID{
		{1, 2, 3, 4}, {4, 3, 2, 1}, {2, 4, 1, 3}, {3, 1, 4, 2},
	}
	for _, p := range perms {
		in := append([]simnet.NodeID(nil), p...)
		got := r.Rank(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Rank(%v) = %v, want %v", p, got, want)
			}
		}
	}
	// Degenerate candidate sets.
	if out := r.Rank(nil); len(out) != 0 {
		t.Fatalf("Rank(nil) = %v", out)
	}
	if out := r.Rank([]simnet.NodeID{2}); len(out) != 1 || out[0] != 2 {
		t.Fatalf("Rank single = %v", out)
	}
}
