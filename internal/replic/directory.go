package replic

import (
	"repro/internal/cryptoutil"
	"repro/internal/overload"
	"repro/internal/simnet"
)

// RPC method names. The directory serves announce/release/holders;
// providers serve get/advert/push.
const (
	methodAnnounce = "replic.announce"
	methodRelease  = "replic.release"
	methodHolders  = "replic.holders"
	methodGet      = "replic.get"
	methodAdvert   = "replic.advert"
	methodPush     = "replic.push"
)

// Seq orders one provider's announce/release stream. The resilience
// layer retries lost control calls, so the directory can observe an old
// announce AFTER approving a newer release; without ordering that
// resurrects a registration for a replica the holder already dropped — a
// phantom holder that never heals, because providers only release what
// they hold. Each provider stamps every announce/release with a
// monotonically increasing counter (retries reuse the stamp), and the
// directory ignores anything older than what it has already applied.
type announceReq struct {
	Object cryptoutil.Hash
	Holder simnet.NodeID
	Origin bool
	Seq    uint64
}

type releaseReq struct {
	Object cryptoutil.Hash
	Holder simnet.NodeID
	Seq    uint64
}

type holdersResp struct {
	Holders []simnet.NodeID
}

type advertReq struct {
	Object cryptoutil.Hash
	Rate   float64   // sender's local decayed rate, req/s
	Region []float64 // sender's per-region breakdown, req/s
}

type pushReq struct {
	Object cryptoutil.Hash
	Data   []byte
}

type getResp struct {
	Data []byte
	OK   bool
}

// holderEntry is one replica registration. seq is the holder's own
// announce stamp — the fence against stale control messages.
type holderEntry struct {
	id     simnet.NodeID
	origin bool
	seq    uint64
}

// Directory is the replica rendezvous and the replica-floor authority: it
// maps each object to its current holder set (origin first, then in
// announce order) and arbitrates releases so the holder count never drops
// below the configured floor and a pinned origin is never released — the
// same role the tracker plays for webapp swarms, and like the tracker it
// is an availability optimization plus a safety interlock, not a data
// authority (content is fetched from holders, not from it).
//
// Run it on an anchor node: the fault battery's scenario contract already
// exempts anchors from crashes, exactly as X18 exempts its tracker.
type Directory struct {
	rpc     *simnet.RPCNode
	floorK  int
	holders map[cryptoutil.Hash][]holderEntry
	// released tombstones approved releases by (object, holder) → release
	// seq, so a late retry of an older announce cannot resurrect the
	// registration. A genuinely new announce (fresh seq from a re-push or a
	// restart) supersedes the tombstone.
	released map[cryptoutil.Hash]map[simnet.NodeID]uint64
}

// NewDirectory starts a directory on node, enforcing the given replica
// floor on releases.
func NewDirectory(node *simnet.Node, floorK int) *Directory {
	return NewDirectoryWith(node, floorK, overload.Config{})
}

// NewDirectoryWith is NewDirectory plus server-side overload control.
// Every directory endpoint is control-plane — announce/release/holders
// keep the replica map honest — so all three ride the priority lane and
// none sit behind the bulk queue; the overload layer's contribution here
// is admission bounding and the control-lane uplink stamp. A zero ocfg
// is a pure passthrough (byte-identical to NewDirectory).
func NewDirectoryWith(node *simnet.Node, floorK int, ocfg overload.Config) *Directory {
	if floorK < 1 {
		floorK = 1
	}
	d := &Directory{
		rpc:      simnet.NewRPCNode(node),
		floorK:   floorK,
		holders:  map[cryptoutil.Hash][]holderEntry{},
		released: map[cryptoutil.Hash]map[simnet.NodeID]uint64{},
	}
	ov := overload.New(d.rpc, ocfg)
	ov.Control(methodAnnounce, d.onAnnounce)
	ov.Control(methodRelease, d.onRelease)
	ov.Control(methodHolders, d.onHolders)
	return d
}

// Node returns the directory's simnet node.
func (d *Directory) Node() *simnet.Node { return d.rpc.Node() }

func (d *Directory) onAnnounce(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(announceReq)
	if !ok {
		return false, 8
	}
	hs := d.holders[r.Object]
	for i := range hs {
		if hs[i].id == r.Holder {
			hs[i].origin = hs[i].origin || r.Origin
			if r.Seq > hs[i].seq {
				hs[i].seq = r.Seq
			}
			return true, 8
		}
	}
	if tomb, ok := d.released[r.Object][r.Holder]; ok {
		if r.Seq <= tomb {
			// Stale: this announce predates an approved release — the
			// holder no longer has the replica.
			return false, 8
		}
		delete(d.released[r.Object], r.Holder)
	}
	e := holderEntry{id: r.Holder, origin: r.Origin, seq: r.Seq}
	if r.Origin {
		// Origins list first: directory-order fetching (the static arm's
		// client policy) then matches the single-origin feudal shape.
		d.holders[r.Object] = append([]holderEntry{e}, hs...)
	} else {
		d.holders[r.Object] = append(hs, e)
	}
	return true, 8
}

// onRelease arbitrates a holder's offer to drop its replica: approved
// only if the holder is registered, is not the origin, and the remaining
// count stays at or above the floor. A holder no longer registered gets
// an approval too — dropping a replica the directory already forgot is
// always safe.
func (d *Directory) onRelease(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(releaseReq)
	if !ok {
		return false, 8
	}
	hs := d.holders[r.Object]
	for i := range hs {
		if hs[i].id != r.Holder {
			continue
		}
		if r.Seq < hs[i].seq {
			// Stale: the registration is newer than this release offer (the
			// holder re-announced since) — the decision no longer applies.
			return false, 8
		}
		if hs[i].origin || len(hs) <= d.floorK {
			return false, 8
		}
		d.holders[r.Object] = append(hs[:i], hs[i+1:]...)
		d.tombstone(r.Object, r.Holder, r.Seq)
		return true, 8
	}
	d.tombstone(r.Object, r.Holder, r.Seq)
	return true, 8
}

// tombstone records an approved release so older announces stay dead.
func (d *Directory) tombstone(obj cryptoutil.Hash, holder simnet.NodeID, seq uint64) {
	m := d.released[obj]
	if m == nil {
		m = map[simnet.NodeID]uint64{}
		d.released[obj] = m
	}
	if cur, ok := m[holder]; !ok || seq > cur {
		m[holder] = seq
	}
}

func (d *Directory) onHolders(from simnet.NodeID, req any) (any, int) {
	obj, ok := req.(cryptoutil.Hash)
	if !ok {
		return holdersResp{}, 8
	}
	hs := d.holders[obj]
	out := make([]simnet.NodeID, len(hs))
	for i := range hs {
		out[i] = hs[i].id
	}
	return holdersResp{Holders: out}, 16 + 8*len(out)
}

// NumHolders returns the registered holder count for an object
// (in-process inspection for experiments and tests).
func (d *Directory) NumHolders(obj cryptoutil.Hash) int { return len(d.holders[obj]) }

// HoldersOf returns a copy of the registered holder list, origin first
// (in-process inspection for experiments and tests).
func (d *Directory) HoldersOf(obj cryptoutil.Hash) []simnet.NodeID {
	hs := d.holders[obj]
	out := make([]simnet.NodeID, len(hs))
	for i := range hs {
		out[i] = hs[i].id
	}
	return out
}

// TotalReplicas returns the registered replica count across all objects —
// the X19 replica-count timeline samples exactly this.
func (d *Directory) TotalReplicas() int {
	n := 0
	for _, hs := range d.holders { // determinism:ok integer sum, order-independent
		n += len(hs)
	}
	return n
}
