package replic

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/overload"
	"repro/internal/resil"
	"repro/internal/simnet"
)

// ctrlTimeout bounds the provider's control-plane calls (directory
// lookups, adverts, pushes) when the resilience layer is off. It is a
// liveness backstop, not a tuning knob: a lost control message just means
// that maintenance round accomplishes less and the next tick retries.
const ctrlTimeout = 10 * time.Second

// Provider is one replica-holding node. It serves replic.get, tracks
// per-object decayed demand broken down by requester region, and — when
// the layer is enabled — runs a maintenance tick that advertises hot
// objects to their co-holders, pushes new replicas toward the heaviest
// demand region (origin only, so a swarm never races itself), and offers
// cold unpinned replicas back to the directory, which refuses whenever a
// release would breach the floor.
//
// Pinned objects are this layer's anchors: exactly as internal/simnet/fault
// exempts anchor nodes from every scenario's crash set, a pinned replica is
// exempt from demand decay — the provider never offers it for release and
// the directory would refuse anyway (origin registrations are
// unreleasable). TestReplicPinnedNeverReleased pins the exemption.
type Provider struct {
	cfg Config
	rpc *simnet.RPCNode
	res *resil.Client
	dir simnet.NodeID

	demand *Demand
	store  map[cryptoutil.Hash][]byte
	pinned map[cryptoutil.Hash]bool
	held   []cryptoutil.Hash // sorted; the deterministic iteration order

	// peers are the candidate replica targets (every provider, self
	// included — self is skipped), sorted by id so push-target selection is
	// a function of state alone.
	peers    []simnet.NodeID
	regionOf map[simnet.NodeID]int

	// ctrlSeq stamps this provider's announce/release stream so the
	// directory can order them even when the resilience layer retries a
	// lost message out of order (see announceReq).
	ctrlSeq uint64

	// pushing guards one in-flight push per object so a slow push is not
	// re-issued by the next tick.
	pushing map[cryptoutil.Hash]bool
	// releasing likewise guards the release round-trip.
	releasing map[cryptoutil.Hash]bool

	rates  []float64 // reusable RegionRates buffer
	advBuf []float64 // reusable LocalRegionRates buffer

	m *replicMetrics

	// BytesServed counts payload bytes this provider has served through
	// replic.get — the per-holder ledger X19's origin-byte-share gauge is
	// computed from.
	BytesServed int64
	// OriginBytes is the subset of BytesServed for objects this provider
	// has pinned — i.e. bytes the *origin* carried. Summed across
	// providers and divided by total BytesServed it is exactly the
	// replic.origin.byte_share gauge.
	OriginBytes int64
	// ServedOK counts successful replic.get responses.
	ServedOK int64
}

// NewProvider wires a provider onto node. dir is the directory node,
// regions the geography size, and regionOf maps every node (clients and
// providers) to its home region — the same assignment handed to
// simnet.SetRegionMatrix. The provider starts empty; seed content with
// Put, then call Start once the peer set is known.
func NewProvider(node *simnet.Node, cfg Config, dir simnet.NodeID, regions int, regionOf map[simnet.NodeID]int) *Provider {
	cfg = cfg.withDefaults()
	p := &Provider{
		cfg:       cfg,
		rpc:       simnet.NewRPCNode(node),
		dir:       dir,
		demand:    NewDemand(cfg.HalfLife, regions),
		store:     map[cryptoutil.Hash][]byte{},
		pinned:    map[cryptoutil.Hash]bool{},
		regionOf:  regionOf,
		pushing:   map[cryptoutil.Hash]bool{},
		releasing: map[cryptoutil.Hash]bool{},
		rates:     make([]float64, regions),
		advBuf:    make([]float64, regions),
	}
	if cfg.Enabled {
		p.res = resil.New(p.rpc, cfg.Resilience)
		p.m = metricsFor(node.Obs())
	}
	// Overload control guards the blob-serving path; adverts are control
	// plane (they keep demand estimates flowing during saturation — the
	// whole point of the priority lane); pushes stay plain: they are bulk
	// provider-to-provider transfers already gated by the pushing map.
	// Outbound control calls get the lane stamp so a saturated provider's
	// own announces/releases overtake its queued get replies.
	ov := overload.New(p.rpc, cfg.Overload)
	ov.Protect(methodGet, p.onGet)
	ov.Control(methodAdvert, p.onAdvert)
	p.rpc.Serve(methodPush, p.onPush)
	ov.MarkControl(methodAnnounce)
	ov.MarkControl(methodRelease)
	ov.MarkControl(methodHolders)
	// After an outage the directory may have handed out stale holder lists
	// or missed this node entirely (it never unregisters holders on crash —
	// replicas survive restarts, like webapp peers' blobs). Re-announcing
	// every held object restores the registration idempotently.
	node.OnUp(func() { p.announceAll() })
	return p
}

// Node returns the provider's simnet node.
func (p *Provider) Node() *simnet.Node { return p.rpc.Node() }

// Resil returns the provider's resilience client (nil when the layer is
// disabled).
func (p *Provider) Resil() *resil.Client { return p.res }

// RPC returns the provider's RPC endpoint. Experiments use it to attach
// probe endpoints (X20's control-plane pinger) on the provider's node.
func (p *Provider) RPC() *simnet.RPCNode { return p.rpc }

// Holds reports whether the provider currently stores obj.
func (p *Provider) Holds(obj cryptoutil.Hash) bool { _, ok := p.store[obj]; return ok }

// Pinned reports whether obj is pinned on this provider.
func (p *Provider) Pinned(obj cryptoutil.Hash) bool { return p.pinned[obj] }

// NumHeld returns how many objects the provider stores.
func (p *Provider) NumHeld() int { return len(p.held) }

// HeldObjects returns a copy of the held-object list, sorted by hash
// (in-process inspection for experiments and tests).
func (p *Provider) HeldObjects() []cryptoutil.Hash {
	return append([]cryptoutil.Hash(nil), p.held...)
}

// Demand exposes the provider's demand tracker (tests and experiments
// inspect it; protocol code never mutates it from outside).
func (p *Provider) Demand() *Demand { return p.demand }

// Put installs an object locally and announces the registration to the
// directory. Pinned objects are origins: never released, never decayed.
func (p *Provider) Put(obj cryptoutil.Hash, data []byte, pinned bool) {
	p.install(obj, data)
	if pinned {
		p.pinned[obj] = true
	}
	p.announce(obj)
}

// install stores the bytes and keeps held sorted.
func (p *Provider) install(obj cryptoutil.Hash, data []byte) {
	if _, ok := p.store[obj]; !ok {
		i := sort.Search(len(p.held), func(i int) bool { return !hashLess(p.held[i], obj) })
		p.held = append(p.held, cryptoutil.Hash{})
		copy(p.held[i+1:], p.held[i:])
		p.held[i] = obj
	}
	p.store[obj] = data
}

// drop removes a released replica.
func (p *Provider) drop(obj cryptoutil.Hash) {
	if _, ok := p.store[obj]; !ok {
		return
	}
	delete(p.store, obj)
	for i := range p.held {
		if p.held[i] == obj {
			p.held = append(p.held[:i], p.held[i+1:]...)
			break
		}
	}
}

func hashLess(a, b cryptoutil.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (p *Provider) announce(obj cryptoutil.Hash) {
	p.ctrlSeq++
	req := announceReq{Object: obj, Holder: p.Node().ID(), Origin: p.pinned[obj], Seq: p.ctrlSeq}
	p.call(p.dir, methodAnnounce, req, 72, func(any, error) {})
}

func (p *Provider) announceAll() {
	for _, obj := range p.held {
		p.announce(obj)
	}
}

// call routes control traffic through the resilience layer when attached.
func (p *Provider) call(to simnet.NodeID, method string, req any, size int, done func(any, error)) {
	if p.res != nil {
		p.res.Call(to, method, req, size, ctrlTimeout, done)
		return
	}
	p.rpc.Call(to, method, req, size, ctrlTimeout, done)
}

// SetPeers installs the candidate replica-target set (sorted copy taken).
func (p *Provider) SetPeers(peers []simnet.NodeID) {
	p.peers = append([]simnet.NodeID(nil), peers...)
	sort.Slice(p.peers, func(i, j int) bool { return p.peers[i] < p.peers[j] })
}

// Start begins the maintenance tick when the layer is enabled. Ticks are
// staggered by node id so the providers' maintenance traffic does not
// arrive at the directory in one synchronized burst.
func (p *Provider) Start() {
	if !p.cfg.Enabled {
		return
	}
	stagger := time.Duration(int64(p.Node().ID())%16) * p.cfg.TickEvery / 16
	p.Node().After(p.cfg.TickEvery+stagger, p.tick)
}

// tick is one maintenance round. While the node is down the round is a
// pure reschedule: timers keep firing across outages, but a crashed node
// must neither send nor mutate protocol state.
func (p *Provider) tick() {
	node := p.Node()
	node.After(p.cfg.TickEvery, p.tick)
	if !node.Up() {
		return
	}
	now := node.Now()
	p.demand.Tick(now)
	for _, obj := range p.held {
		p.tickObject(obj, now)
	}
}

// tickObject makes this round's advert/push/release decisions for one
// held object.
func (p *Provider) tickObject(obj cryptoutil.Hash, now time.Duration) {
	local := p.demand.LocalRate(obj, now)
	swarm := p.demand.SwarmRate(obj, now)
	switch {
	case local >= p.cfg.HotRate:
		// Hot here: share the view with co-holders, and (origin only)
		// consider growing the replica set.
		p.withHolders(obj, func(holders []simnet.NodeID) {
			p.advertise(obj, holders)
			if p.pinned[obj] {
				p.maybePush(obj, holders)
			}
		})
	case p.pinned[obj] && swarm >= p.cfg.HotRate:
		// Origin of a swarm hot elsewhere: demand may be landing on the
		// replicas, but sizing the set is still the origin's job.
		p.withHolders(obj, func(holders []simnet.NodeID) { p.maybePush(obj, holders) })
	case !p.pinned[obj] && swarm < p.cfg.ColdRate:
		p.maybeRelease(obj)
	}
}

// withHolders fetches the directory's current holder list for obj and
// runs fn with it (minus nothing — self is included where registered).
func (p *Provider) withHolders(obj cryptoutil.Hash, fn func([]simnet.NodeID)) {
	p.call(p.dir, methodHolders, obj, 40, func(resp any, err error) {
		if err != nil || !p.Node().Up() {
			return
		}
		hr, ok := resp.(holdersResp)
		if !ok {
			return
		}
		fn(hr.Holders)
	})
}

// advertise sends this provider's local demand snapshot for obj to every
// co-holder. Adverts are replaceable snapshots (see Demand.Advert), so
// re-advertising each tick never double counts.
func (p *Provider) advertise(obj cryptoutil.Hash, holders []simnet.NodeID) {
	now := p.Node().Now()
	p.demand.LocalRegionRates(obj, now, p.advBuf)
	self := p.Node().ID()
	for _, h := range holders {
		if h == self {
			continue
		}
		req := advertReq{
			Object: obj,
			Rate:   p.demand.LocalRate(obj, now),
			Region: append([]float64(nil), p.advBuf...),
		}
		p.call(h, methodAdvert, req, 48+8*len(req.Region), func(any, error) {})
		p.m.advertSent.Inc()
	}
}

// maybePush grows obj's replica set by one when swarm demand says the
// current holder count is under target: the new replica goes to the
// lowest-id non-holding provider in the heaviest-demand region (falling
// back to any region in descending demand order), one push per object at
// a time.
func (p *Provider) maybePush(obj cryptoutil.Hash, holders []simnet.NodeID) {
	if p.pushing[obj] || len(holders) >= p.cfg.Cap {
		return
	}
	now := p.Node().Now()
	target := p.cfg.TargetReplicas(p.demand.SwarmRate(obj, now))
	if len(holders) >= target {
		return
	}
	p.demand.RegionRates(obj, now, p.rates)
	to, ok := p.pickTarget(holders)
	if !ok {
		return
	}
	data := p.store[obj]
	p.pushing[obj] = true
	p.call(to, methodPush, pushReq{Object: obj, Data: data}, len(data)+40, func(resp any, err error) {
		delete(p.pushing, obj)
		if err != nil || resp != true || !p.Node().Up() {
			return
		}
		p.m.created.Inc()
		p.m.pushBytes.Add(int64(len(data)))
	})
}

// pickTarget chooses the push destination: regions ranked by current
// demand (descending, region index breaking ties), and within the first
// region that has a non-holding provider, the lowest node id. Pure
// function of the inputs — no randomness, no map iteration.
func (p *Provider) pickTarget(holders []simnet.NodeID) (simnet.NodeID, bool) {
	order := regionOrder(p.rates)
	self := p.Node().ID()
	for _, g := range order {
		for _, cand := range p.peers {
			if cand == self || p.regionOf[cand] != g {
				continue
			}
			if containsID(holders, cand) {
				continue
			}
			return cand, true
		}
	}
	return 0, false
}

// regionOrder returns region indices sorted by demand descending, index
// ascending on ties. Small fixed-size sort; allocation here is fine (the
// push path is cold).
func regionOrder(rates []float64) []int {
	order := make([]int, len(rates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rates[order[a]], rates[order[b]]
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}

func containsID(ids []simnet.NodeID, id simnet.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// maybeRelease offers a cold unpinned replica back to the directory; the
// replica is dropped only on explicit approval, so the floor holds even
// when several holders go cold in the same tick — the directory serializes
// the decisions.
func (p *Provider) maybeRelease(obj cryptoutil.Hash) {
	if p.releasing[obj] {
		return
	}
	p.releasing[obj] = true
	p.ctrlSeq++
	req := releaseReq{Object: obj, Holder: p.Node().ID(), Seq: p.ctrlSeq}
	p.call(p.dir, methodRelease, req, 72, func(resp any, err error) {
		delete(p.releasing, obj)
		if err != nil || resp != true || !p.Node().Up() {
			return
		}
		p.drop(obj)
		p.m.decayed.Inc()
	})
}

// onGet serves a replica fetch and feeds the demand tracker with the
// requester's home region.
func (p *Provider) onGet(from simnet.NodeID, req any) (any, int) {
	obj, ok := req.(cryptoutil.Hash)
	if !ok {
		return getResp{}, 16
	}
	data, ok := p.store[obj]
	if !ok {
		return getResp{}, 16
	}
	if p.cfg.Enabled {
		p.demand.Observe(obj, p.regionOf[from], p.Node().Now())
	}
	p.BytesServed += int64(len(data))
	if p.pinned[obj] {
		p.OriginBytes += int64(len(data))
	}
	p.ServedOK++
	return getResp{Data: data, OK: true}, len(data) + 16
}

// onAdvert folds a co-holder's demand snapshot into the local swarm view.
func (p *Provider) onAdvert(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(advertReq)
	if !ok || !p.cfg.Enabled {
		return false, 8
	}
	// Only fold adverts for objects actually held: a released replica must
	// not keep accumulating swarm state.
	if !p.Holds(r.Object) {
		return false, 8
	}
	p.demand.Advert(r.Object, from, r.Rate, r.Region, p.Node().Now())
	return true, 8
}

// onPush installs a pushed replica and registers it with the directory.
func (p *Provider) onPush(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(pushReq)
	if !ok || !p.cfg.Enabled {
		return false, 8
	}
	p.install(r.Object, r.Data)
	p.announce(r.Object)
	return true, 8
}
