package replic

import (
	"math"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Rate is one exponentially-decayed request counter: Observe adds a unit
// of demand at a virtual time, and the accumulated value halves every
// HalfLife. State is a pure function of the observation multiset — no
// clock, no randomness — and decay is applied lazily, so the hot path is
// a handful of float operations and allocates nothing.
type Rate struct {
	// HalfLife is the decay half-life. Two rates merge only if they
	// agree on it.
	HalfLife time.Duration
	v        float64
	last     time.Duration
}

// NewRate returns a zero-valued counter decaying with the given
// half-life.
func NewRate(halfLife time.Duration) Rate { return Rate{HalfLife: halfLife} }

// decayFactor returns 2^(-dt/halfLife); dt <= 0 decays nothing (a
// same-instant or out-of-order observation just accumulates — time never
// runs backwards on a simnet node, but merges normalize defensively).
func decayFactor(dt, halfLife time.Duration) float64 {
	if dt <= 0 || halfLife <= 0 {
		return 1
	}
	return math.Exp2(-dt.Seconds() / halfLife.Seconds())
}

// decayTo rolls the counter forward to now.
func (r *Rate) decayTo(now time.Duration) {
	if now > r.last {
		r.v *= decayFactor(now-r.last, r.HalfLife)
		r.last = now
	}
}

// Observe records one request at virtual time now.
func (r *Rate) Observe(now time.Duration) { r.AddAt(now, 1) }

// AddAt records w units of demand at virtual time now.
func (r *Rate) AddAt(now time.Duration, w float64) {
	r.decayTo(now)
	r.v += w
}

// Value returns the decayed demand as of now, without mutating the
// counter.
func (r Rate) Value(now time.Duration) float64 {
	if now <= r.last {
		return r.v
	}
	return r.v * decayFactor(now-r.last, r.HalfLife)
}

// Merge combines two counters observed on the same half-life into one
// that has seen both observation streams. It is commutative —
// Merge(a, b) == Merge(b, a) bit for bit, since both sides decay to the
// same instant (the later of the two timestamps) before their values
// add — which is what lets per-holder demand views combine in any
// arrival order. Mismatched half-lives panic: the sum would be
// meaningless.
func Merge(a, b Rate) Rate {
	if a.HalfLife != b.HalfLife {
		panic("replic: merging rates with different half-lives")
	}
	now := a.last
	if b.last > now {
		now = b.last
	}
	a.decayTo(now)
	b.decayTo(now)
	return Rate{HalfLife: a.HalfLife, v: a.v + b.v, last: now}
}

// pruneBelow is the demand floor under which an entry is dead weight: a
// fully decayed object whose value can never again cross ColdRate without
// fresh observations.
const pruneBelow = 1e-9

// remoteRate is one neighbor's advertised local demand for an object: the
// advertised totals decay on the same half-life from the moment they were
// advertised, and the per-region breakdown is a snapshot scaled by the
// same factor. Kept in a slice sorted by holder id so every aggregation
// over it runs in deterministic order.
type remoteRate struct {
	holder simnet.NodeID
	rate   Rate
	region []float64 // per-region demand snapshot, at rate.last
}

// objDemand is the per-object view: locally observed demand (total and
// per requester region) plus the latest advert from each other holder.
type objDemand struct {
	local  Rate
	region []Rate
	remote []remoteRate // sorted by holder id
}

// Demand tracks decayed request rates per object, broken down by
// requester region, and folds in neighbor adverts to estimate swarm-wide
// demand. All aggregation iterates fixed-order slices, so identical
// observation histories produce identical floats on every run.
type Demand struct {
	halfLife time.Duration
	regions  int
	objects  map[cryptoutil.Hash]*objDemand
}

// NewDemand returns an empty tracker for a geography of `regions`
// regions.
func NewDemand(halfLife time.Duration, regions int) *Demand {
	if regions < 1 {
		regions = 1
	}
	return &Demand{
		halfLife: halfLife,
		regions:  regions,
		objects:  map[cryptoutil.Hash]*objDemand{},
	}
}

func (d *Demand) entry(obj cryptoutil.Hash) *objDemand {
	e, ok := d.objects[obj]
	if !ok {
		e = &objDemand{local: NewRate(d.halfLife), region: make([]Rate, d.regions)}
		for i := range e.region {
			e.region[i] = NewRate(d.halfLife)
		}
		d.objects[obj] = e
	}
	return e
}

// Observe records one request for obj from a requester homed in region,
// at virtual time now. Steady-state cost is two lazy-decay updates and
// zero allocations (the entry is allocated once, on an object's first
// observation).
func (d *Demand) Observe(obj cryptoutil.Hash, region int, now time.Duration) {
	e := d.entry(obj)
	e.local.Observe(now)
	if region >= 0 && region < len(e.region) {
		e.region[region].Observe(now)
	}
}

// LocalRate returns this provider's own decayed request rate for obj in
// req/s — the quantity it advertises to neighbors.
func (d *Demand) LocalRate(obj cryptoutil.Hash, now time.Duration) float64 {
	e, ok := d.objects[obj]
	if !ok {
		return 0
	}
	return e.local.Value(now) * d.perSecond()
}

// perSecond converts accumulated decayed mass into an approximate req/s
// rate: a constant stream of q req/s accumulates q·HalfLife/ln2 of mass
// at equilibrium, so dividing by that horizon recovers q.
func (d *Demand) perSecond() float64 {
	if d.halfLife <= 0 {
		return 1
	}
	return math.Ln2 / d.halfLife.Seconds()
}

// SwarmRate estimates the swarm-wide request rate for obj in req/s: the
// local decayed rate plus every neighbor's advertised (and since-decayed)
// local rate, summed in holder-id order.
func (d *Demand) SwarmRate(obj cryptoutil.Hash, now time.Duration) float64 {
	e, ok := d.objects[obj]
	if !ok {
		return 0
	}
	sum := e.local.Value(now) * d.perSecond()
	for i := range e.remote {
		sum += e.remote[i].rate.Value(now)
	}
	return sum
}

// Advert folds in a neighbor holder's advertisement: its local rate (in
// req/s, already normalized by the sender) and per-region breakdown,
// replacing any previous advert from the same holder — adverts are
// snapshots, not increments, so re-advertising every tick never double
// counts.
func (d *Demand) Advert(obj cryptoutil.Hash, from simnet.NodeID, rate float64, region []float64, now time.Duration) {
	e := d.entry(obj)
	i := 0
	for i < len(e.remote) && e.remote[i].holder < from {
		i++
	}
	if i < len(e.remote) && e.remote[i].holder == from {
		e.remote[i].rate = Rate{HalfLife: d.halfLife, v: rate, last: now}
		e.remote[i].region = append(e.remote[i].region[:0], region...)
		return
	}
	e.remote = append(e.remote, remoteRate{})
	copy(e.remote[i+1:], e.remote[i:])
	e.remote[i] = remoteRate{
		holder: from,
		rate:   Rate{HalfLife: d.halfLife, v: rate, last: now},
		region: append([]float64(nil), region...),
	}
}

// DropHolder forgets any advert state from a holder (used when a push to
// it fails or it retracts).
func (d *Demand) DropHolder(obj cryptoutil.Hash, holder simnet.NodeID) {
	e, ok := d.objects[obj]
	if !ok {
		return
	}
	for i := range e.remote {
		if e.remote[i].holder == holder {
			e.remote = append(e.remote[:i], e.remote[i+1:]...)
			return
		}
	}
}

// RegionRates fills dst (len = regions) with the swarm-wide per-region
// decayed demand for obj: locally observed region rates plus every
// advertised breakdown scaled by its advert's decay. dst is reused by the
// caller so the hot path stays allocation-free.
func (d *Demand) RegionRates(obj cryptoutil.Hash, now time.Duration, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	e, ok := d.objects[obj]
	if !ok {
		return
	}
	for i := 0; i < len(e.region) && i < len(dst); i++ {
		dst[i] += e.region[i].Value(now) * d.perSecond()
	}
	for i := range e.remote {
		f := decayFactor(now-e.remote[i].rate.last, d.halfLife)
		for g := 0; g < len(e.remote[i].region) && g < len(dst); g++ {
			dst[g] += e.remote[i].region[g] * f
		}
	}
}

// LocalRegionRates fills dst with only the locally observed per-region
// rates in req/s — the breakdown a holder advertises.
func (d *Demand) LocalRegionRates(obj cryptoutil.Hash, now time.Duration, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	e, ok := d.objects[obj]
	if !ok {
		return
	}
	for i := 0; i < len(e.region) && i < len(dst); i++ {
		dst[i] = e.region[i].Value(now) * d.perSecond()
	}
}

// Regions returns the tracker's region count.
func (d *Demand) Regions() int { return d.regions }

// Len returns how many objects currently carry demand state.
func (d *Demand) Len() int { return len(d.objects) }

// Tick garbage-collects fully decayed state: stale neighbor adverts are
// dropped and objects whose every component has decayed below the prune
// floor are forgotten. Deletion order cannot leak — each entry's fate
// depends only on its own values — and the sweep allocates nothing, so
// it carries a zero allocation budget alongside Observe.
func (d *Demand) Tick(now time.Duration) {
	for obj, e := range d.objects { // determinism:ok per-entry prune, no cross-entry reads
		keep := e.local.Value(now) >= pruneBelow
		w := 0
		for i := range e.remote {
			if e.remote[i].rate.Value(now) >= pruneBelow {
				e.remote[w] = e.remote[i]
				w++
			}
		}
		e.remote = e.remote[:w]
		if w > 0 {
			keep = true
		}
		if !keep {
			for i := range e.region {
				if e.region[i].Value(now) >= pruneBelow {
					keep = true
					break
				}
			}
		}
		if !keep {
			delete(d.objects, obj)
		}
	}
}
