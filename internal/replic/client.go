package replic

import (
	"errors"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/resil"
	"repro/internal/simnet"
)

// ErrNoReplica is the terminal fetch failure: every candidate holder was
// tried and none produced the object.
var ErrNoReplica = errors.New("replic: no holder produced the object")

// Client fetches objects by nearest-replica routing. Disabled it is the
// static baseline: ask the directory for holders, then try them in
// directory order (origin first) with the caller's fixed timeout — the
// X18-style single-path fetch. Enabled it ranks the holder list with the
// Router (measured SRTT first, region matrix as prior), fetches from the
// nearest, hedges to the second-nearest after HedgeAfter, and fails over
// down the ranking until a holder answers.
type Client struct {
	cfg    Config
	rpc    *simnet.RPCNode
	res    *resil.Client
	dir    simnet.NodeID
	router *Router
	m      *replicMetrics
}

// NewClient wires a fetch client onto node. self is the client's home
// region; regionOf and extra mirror the simnet region matrix (extra may be
// nil for a flat geography).
func NewClient(node *simnet.Node, cfg Config, dir simnet.NodeID, self int, regionOf map[simnet.NodeID]int, extra [][]time.Duration) *Client {
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg, rpc: simnet.NewRPCNode(node), dir: dir}
	if cfg.Enabled {
		c.res = resil.New(c.rpc, cfg.Resilience)
		var srtt func(simnet.NodeID) (time.Duration, bool)
		if c.res.Enabled() {
			srtt = c.res.PeerSRTT
		}
		c.router = NewRouter(self, regionOf, extra, srtt)
		c.m = metricsFor(node.Obs())
	}
	return c
}

// Node returns the client's simnet node.
func (c *Client) Node() *simnet.Node { return c.rpc.Node() }

// Router exposes the client's ranking policy (nil when disabled).
func (c *Client) Router() *Router { return c.router }

// Get fetches obj: resolve holders through the directory, then fetch per
// the configured policy. timeout bounds each directory/fetch RPC (it is
// the whole budget per attempt, not for the operation — failover makes
// more attempts). done receives the payload or a terminal error.
func (c *Client) Get(obj cryptoutil.Hash, timeout time.Duration, done func(data []byte, err error)) {
	c.call(c.dir, methodHolders, obj, 40, timeout, func(resp any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		hr, ok := resp.(holdersResp)
		if !ok || len(hr.Holders) == 0 {
			done(nil, ErrNoReplica)
			return
		}
		// The directory builds a fresh holder slice per request, so ranking
		// can permute it in place without copying.
		holders := hr.Holders
		if c.cfg.Enabled {
			holders = c.router.Rank(holders)
		}
		f := &fetch{c: c, obj: obj, holders: holders, timeout: timeout, done: done}
		f.launch(0)
		if c.cfg.Enabled && len(holders) > 1 {
			f.hedgeTimer = c.Node().AfterTimer(c.cfg.HedgeAfter, f.fireHedge)
		}
	})
}

// call routes through the resilience layer when attached.
func (c *Client) call(to simnet.NodeID, method string, req any, size int, timeout time.Duration, done func(any, error)) {
	if c.res != nil {
		c.res.Call(to, method, req, size, timeout, done)
		return
	}
	c.rpc.Call(to, method, req, size, timeout, done)
}

// fetch is one replica-fetch operation: sequential failover down the
// ranked holder list, plus (enabled only) one hedge to the second-ranked
// holder if the nearest has not answered within HedgeAfter. First
// successful response wins; late losers are ignored.
type fetch struct {
	c       *Client
	obj     cryptoutil.Hash
	holders []simnet.NodeID
	timeout time.Duration
	done    func([]byte, error)

	next       int // index of the next holder to try
	inflight   int
	finished   bool
	hedged     bool
	hedgeTimer simnet.Timer
	lastErr    error
}

func (f *fetch) launch(i int) {
	if i >= len(f.holders) {
		return
	}
	f.next = i + 1
	f.inflight++
	f.c.call(f.holders[i], methodGet, f.obj, 40, f.timeout, func(resp any, err error) {
		f.complete(i, resp, err)
	})
}

// fireHedge launches the fetch to the next-ranked holder if the earlier
// attempt is still unanswered. This is replica-level hedging — across
// holders — distinct from (and composing with) the resilience layer's
// same-peer hedge.
func (f *fetch) fireHedge() {
	if f.finished || f.hedged || f.next >= len(f.holders) {
		return
	}
	f.hedged = true
	f.c.m.hedgeFired.Inc()
	f.launch(f.next)
}

func (f *fetch) complete(i int, resp any, err error) {
	f.inflight--
	if f.finished {
		return
	}
	if err == nil {
		if r, ok := resp.(getResp); ok && r.OK {
			f.finish(i, r.Data, nil)
			return
		}
		err = ErrNoReplica
	}
	f.lastErr = err
	if f.next < len(f.holders) {
		f.launch(f.next)
		return
	}
	if f.inflight == 0 {
		f.finish(i, nil, f.lastErr)
	}
}

// finish completes exactly once. A win by the top-ranked holder counts as
// a nearest-routing hit (only meaningful — and only counted — when the
// layer is enabled and did the ranking).
func (f *fetch) finish(winner int, data []byte, err error) {
	f.finished = true
	f.hedgeTimer.Cancel()
	if err == nil && f.c.cfg.Enabled && winner == 0 {
		f.c.m.nearestHit.Inc()
	}
	f.done(data, err)
}
