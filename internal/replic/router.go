package replic

import (
	"time"

	"repro/internal/simnet"
)

// Router ranks candidate replica holders by estimated proximity. Two
// knowledge sources feed it, in priority order:
//
//  1. measured reality — the resilience layer's per-peer smoothed RTT
//     (halved into a one-way estimate), once at least one sample exists
//     for the peer;
//  2. the region matrix — for peers never contacted, the configured
//     one-way inter-region delay from the client's region to the
//     holder's, plus a flat access-hop constant so a same-region
//     stranger never ties an RTT-measured 0.
//
// Ties break on node id, making Rank a total order over any candidate
// set: the repo-root property test pins that with no RTT samples the
// order is consistent with the region matrix's one-way delays.
type Router struct {
	self     int // the client's own region
	regionOf map[simnet.NodeID]int
	extra    [][]time.Duration
	// srtt returns the measured smoothed round trip for a peer, if any —
	// wired to resil.Client.PeerSRTT when the resilience layer is on.
	srtt func(simnet.NodeID) (time.Duration, bool)
}

// accessHop is the flat per-endpoint cost added to matrix-based
// estimates, standing in for the access latency both profiles contribute.
// Its exact value only shifts all matrix estimates equally; it exists so
// estimates are strictly positive.
const accessHop = 5 * time.Millisecond

// NewRouter builds a router for a client homed in region self.
// regionOf/extra mirror the arguments simnet.SetRegionMatrix was
// installed with (nil extra means a flat geography: all matrix estimates
// collapse to the access constant and ranking falls back to node-id
// order among unmeasured peers). srtt may be nil when no resilience layer
// is attached.
func NewRouter(self int, regionOf map[simnet.NodeID]int, extra [][]time.Duration, srtt func(simnet.NodeID) (time.Duration, bool)) *Router {
	return &Router{self: self, regionOf: regionOf, extra: extra, srtt: srtt}
}

// Estimate returns the one-way latency estimate used for ranking.
func (r *Router) Estimate(id simnet.NodeID) time.Duration {
	if r.srtt != nil {
		if s, ok := r.srtt(id); ok {
			return s / 2
		}
	}
	d := accessHop
	if r.extra != nil {
		g := r.regionOf[id] // absent nodes fall into region 0, as simnet does
		if r.self < len(r.extra) && g < len(r.extra[r.self]) {
			d += r.extra[r.self][g]
		}
	}
	return d
}

// Rank sorts holders in place by (Estimate, node id) ascending and
// returns the slice. The node-id tiebreak makes the order total, so the
// same candidate set always ranks identically. Insertion sort: candidate
// sets are replica lists (a handful of entries) and the routing hot path
// must not allocate.
func (r *Router) Rank(holders []simnet.NodeID) []simnet.NodeID {
	for i := 1; i < len(holders); i++ {
		h := holders[i]
		e := r.Estimate(h)
		j := i - 1
		for j >= 0 {
			ej := r.Estimate(holders[j])
			if ej < e || (ej == e && holders[j] < h) {
				break
			}
			holders[j+1] = holders[j]
			j--
		}
		holders[j+1] = h
	}
	return holders
}
