package replic

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Defaults()
	if !cfg.Enabled || cfg.FloorK != 2 || cfg.Cap != 6 || cfg.HalfLife != 30*time.Second {
		t.Fatalf("Defaults() = %+v", cfg)
	}
	// A disabled config passes through untouched: no defaults, no panics.
	z := Config{}.withDefaults()
	if z.Enabled || z.FloorK != 0 {
		t.Fatalf("zero Config gained defaults: %+v", z)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"floor above cap":      {Enabled: true, FloorK: 5, Cap: 3},
		"inverted hysteresis":  {Enabled: true, HotRate: 0.2, ColdRate: 0.5},
		"degenerate threshold": {Enabled: true, HotRate: 0.3, ColdRate: 0.3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: withDefaults did not panic", name)
				}
			}()
			cfg.withDefaults()
		}()
	}
}

func TestTargetReplicasClamps(t *testing.T) {
	cfg := Defaults() // FloorK 2, Cap 6, PerReplicaRate 1.0
	for _, tc := range []struct {
		rate float64
		want int
	}{
		{0, 2}, {-3, 2}, {math.NaN(), 2}, {0.9, 2}, {1.5, 3}, {3.2, 5}, {100, 6}, {math.Inf(1), 6},
	} {
		if got := cfg.TargetReplicas(tc.rate); got != tc.want {
			t.Errorf("TargetReplicas(%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
}

// TestDirectoryFloorAndOrigin white-boxes the release arbitration: the
// origin is unreleasable and the holder count never drops below the floor.
func TestDirectoryFloorAndOrigin(t *testing.T) {
	nw := simnet.New(1)
	d := NewDirectory(nw.AddNode(), 2)
	obj := h(1)
	d.onAnnounce(0, announceReq{Object: obj, Holder: 10, Origin: false})
	d.onAnnounce(0, announceReq{Object: obj, Holder: 11, Origin: true})
	d.onAnnounce(0, announceReq{Object: obj, Holder: 12, Origin: false})
	d.onAnnounce(0, announceReq{Object: obj, Holder: 12, Origin: false}) // dedupe
	if got := d.NumHolders(obj); got != 3 {
		t.Fatalf("NumHolders = %d, want 3", got)
	}
	if hs := d.HoldersOf(obj); hs[0] != 11 {
		t.Fatalf("holders = %v, want origin 11 listed first", hs)
	}
	if ok, _ := d.onRelease(0, releaseReq{Object: obj, Holder: 11}); ok != false {
		t.Fatal("origin release approved")
	}
	if ok, _ := d.onRelease(0, releaseReq{Object: obj, Holder: 10}); ok != true {
		t.Fatal("release above floor refused")
	}
	// Now at the floor of 2: every further release of a registered
	// non-origin holder is refused.
	if ok, _ := d.onRelease(0, releaseReq{Object: obj, Holder: 12}); ok != false {
		t.Fatal("release at floor approved")
	}
	if got := d.NumHolders(obj); got != 2 {
		t.Fatalf("NumHolders after arbitration = %d, want the floor 2", got)
	}
	// A holder the directory never registered may always drop.
	if ok, _ := d.onRelease(0, releaseReq{Object: obj, Holder: 99}); ok != true {
		t.Fatal("unknown-holder release refused")
	}
	// Seq ordering: holder 10's release (seq 0) was approved above, so a
	// late retry of its original announce (seq ≤ 0) must NOT resurrect the
	// registration — that phantom would never heal, since providers only
	// offer releases for objects they still hold.
	if ok, _ := d.onAnnounce(0, announceReq{Object: obj, Holder: 10, Seq: 0}); ok != false {
		t.Fatal("stale announce replay accepted after release")
	}
	if got := d.NumHolders(obj); got != 2 {
		t.Fatalf("NumHolders after stale replay = %d, want 2", got)
	}
	// A genuinely newer announce (re-push or restart) supersedes the
	// tombstone and re-registers.
	if ok, _ := d.onAnnounce(0, announceReq{Object: obj, Holder: 10, Seq: 1}); ok != true {
		t.Fatal("fresh announce refused after release")
	}
	if got := d.NumHolders(obj); got != 3 {
		t.Fatalf("NumHolders after re-announce = %d, want 3", got)
	}
	// And a stale release (older than the live registration) is refused:
	// the holder re-announced since making that offer.
	if ok, _ := d.onRelease(0, releaseReq{Object: obj, Holder: 10, Seq: 0}); ok != false {
		t.Fatal("stale release approved against newer registration")
	}
	if got := d.NumHolders(obj); got != 3 {
		t.Fatalf("NumHolders after stale release = %d, want 3", got)
	}
	// Malformed payloads refuse without mutating state.
	if ok, _ := d.onAnnounce(0, "junk"); ok != false {
		t.Fatal("bad announce accepted")
	}
	if ok, _ := d.onRelease(0, 42); ok != false {
		t.Fatal("bad release accepted")
	}
	if resp, _ := d.onHolders(0, "junk"); len(resp.(holdersResp).Holders) != 0 {
		t.Fatal("bad holders query returned holders")
	}
	if d.TotalReplicas() != 3 {
		t.Fatalf("TotalReplicas = %d, want 3", d.TotalReplicas())
	}
}

// world is the end-to-end harness: a directory anchor, nProv providers
// split across two regions 80ms apart, and nClient clients likewise.
type world struct {
	t       *testing.T
	nw      *simnet.Network
	dir     *Directory
	provs   []*Provider
	clients []*Client
}

func newWorld(t *testing.T, cfg Config, nProv, nClient int) *world {
	t.Helper()
	const regions = 2
	nw := simnet.New(42)
	dirNode := nw.AddNode()
	floor := cfg.withDefaults().FloorK
	if floor == 0 {
		floor = 1
	}
	w := &world{t: t, nw: nw, dir: NewDirectory(dirNode, floor)}

	regionOf := map[simnet.NodeID]int{dirNode.ID(): 0}
	extra := [][]time.Duration{
		{0, 80 * time.Millisecond},
		{80 * time.Millisecond, 0},
	}
	var provIDs []simnet.NodeID
	var provNodes []*simnet.Node
	for i := 0; i < nProv; i++ {
		n := nw.AddNode()
		regionOf[n.ID()] = i % regions
		provIDs = append(provIDs, n.ID())
		provNodes = append(provNodes, n)
	}
	var clientNodes []*simnet.Node
	for i := 0; i < nClient; i++ {
		n := nw.AddNode()
		regionOf[n.ID()] = i % regions
		clientNodes = append(clientNodes, n)
	}
	nw.SetRegionMatrix(regionOf, extra)
	for _, n := range provNodes {
		p := NewProvider(n, cfg, dirNode.ID(), regions, regionOf)
		p.SetPeers(provIDs)
		p.Start()
		w.provs = append(w.provs, p)
	}
	for _, n := range clientNodes {
		w.clients = append(w.clients, NewClient(n, cfg, dirNode.ID(), regionOf[n.ID()], regionOf, extra))
	}
	return w
}

// hammer schedules client c to fetch obj every `every` from `from` to
// `until`, returning counters of successes and failures.
func (w *world) hammer(c int, obj cryptoutil.Hash, from, until, every time.Duration) (okN, failN *int) {
	okN, failN = new(int), new(int)
	cl := w.clients[c]
	for at := from; at <= until; at += every {
		cl.Node().After(at, func() {
			cl.Get(obj, 5*time.Second, func(data []byte, err error) {
				if err == nil && len(data) > 0 {
					*okN++
				} else {
					*failN++
				}
			})
		})
	}
	return okN, failN
}

func (w *world) metrics() *replicMetrics { return metricsFor(w.nw.Obs()) }

// testCfg is a fast-reacting enabled config for the end-to-end tests.
func testCfg() Config {
	return Config{
		Enabled:        true,
		FloorK:         2,
		Cap:            4,
		HotRate:        0.5,
		ColdRate:       0.2,
		PerReplicaRate: 1.0,
		HalfLife:       10 * time.Second,
		TickEvery:      5 * time.Second,
		HedgeAfter:     500 * time.Millisecond,
	}
}

// TestReplicGrowsUnderDemandAndDecaysToFloor is the core lifecycle: a hot
// object's replica set climbs to the cap, then garbage-collects back to
// exactly the floor once the spike decays — with the pinned origin still
// holding.
func TestReplicGrowsUnderDemandAndDecaysToFloor(t *testing.T) {
	w := newWorld(t, testCfg(), 4, 4)
	obj := h(1)
	data := make([]byte, 4096)
	w.provs[0].Put(obj, data, true)

	var okPtrs, failPtrs []*int
	for c := range w.clients {
		ok, fail := w.hammer(c, obj, time.Second, 60*time.Second, 500*time.Millisecond)
		okPtrs, failPtrs = append(okPtrs, ok), append(failPtrs, fail)
	}
	w.nw.Run(90 * time.Second)
	if got := w.dir.NumHolders(obj); got != 4 {
		t.Fatalf("holders at peak = %d, want the cap 4", got)
	}
	if got := w.metrics().created.Value(); got != 3 {
		t.Fatalf("replic.replicas.created = %d, want 3", got)
	}
	if w.metrics().advertSent.Value() == 0 {
		t.Fatal("no adverts sent during a hot spike")
	}

	// Demand stopped at t=60s; by ten half-lives later everything is cold.
	w.nw.Run(240 * time.Second)
	if got := w.dir.NumHolders(obj); got != 2 {
		t.Fatalf("holders after decay = %d, want the floor 2", got)
	}
	if got := w.metrics().decayed.Value(); got != 2 {
		t.Fatalf("replic.replicas.decayed = %d, want 2", got)
	}
	if !w.provs[0].Holds(obj) || !w.provs[0].Pinned(obj) {
		t.Fatal("pinned origin lost its replica")
	}
	if hs := w.dir.HoldersOf(obj); hs[0] != w.provs[0].Node().ID() {
		t.Fatalf("origin missing from holder list: %v", hs)
	}
	oks, fails := 0, 0
	for i := range okPtrs {
		oks += *okPtrs[i]
		fails += *failPtrs[i]
	}
	if fails != 0 {
		t.Fatalf("%d fetch failures in a clean run (%d ok)", fails, oks)
	}
	if oks == 0 {
		t.Fatal("no successful fetches recorded")
	}
}

// TestReplicPinnedNeverReleased is the anchor-exemption regression: a
// pinned origin sits at zero demand among expendable replicas, and the
// decay sweep must take the replica set to the floor without ever touching
// it — the replic analog of fault's anchor exemption from crash sets.
func TestReplicPinnedNeverReleased(t *testing.T) {
	w := newWorld(t, testCfg(), 4, 0)
	obj := h(2)
	data := make([]byte, 1024)
	w.provs[0].Put(obj, data, true)
	for _, p := range w.provs[1:] {
		p.Put(obj, data, false)
	}
	w.nw.Run(time.Second)
	if got := w.dir.NumHolders(obj); got != 4 {
		t.Fatalf("seeded holders = %d, want 4", got)
	}
	// No demand at all: every unpinned holder goes cold on its first tick
	// and asks to release. The directory may approve exactly two.
	w.nw.Run(120 * time.Second)
	if got := w.dir.NumHolders(obj); got != 2 {
		t.Fatalf("holders after cold decay = %d, want the floor 2", got)
	}
	if !w.provs[0].Holds(obj) {
		t.Fatal("pinned origin was released by the decay sweep")
	}
	if hs := w.dir.HoldersOf(obj); hs[0] != w.provs[0].Node().ID() {
		t.Fatalf("origin not in holder list after decay: %v", hs)
	}
	held := 0
	for _, p := range w.provs {
		if p.Holds(obj) {
			held++
		}
	}
	if held != 2 {
		t.Fatalf("%d providers still hold the object, want 2", held)
	}
}

// TestReplicNearestRouting: with a replica in the client's region and the
// origin a region away, an enabled client fetches from the local replica.
func TestReplicNearestRouting(t *testing.T) {
	w := newWorld(t, testCfg(), 2, 2)
	obj := h(3)
	data := make([]byte, 2048)
	w.provs[0].Put(obj, data, true)  // region 0
	w.provs[1].Put(obj, data, false) // region 1

	// Client 1 is in region 1; its nearest holder is provs[1].
	done := 0
	w.clients[1].Node().After(time.Second, func() {
		w.clients[1].Get(obj, 5*time.Second, func(got []byte, err error) {
			done++
			if err != nil || len(got) != len(data) {
				t.Errorf("Get: len=%d err=%v", len(got), err)
			}
		})
	})
	w.nw.Run(10 * time.Second)
	if done != 1 {
		t.Fatalf("done ran %d times", done)
	}
	if w.provs[1].ServedOK != 1 || w.provs[0].ServedOK != 0 {
		t.Fatalf("served split origin=%d replica=%d, want the region-1 replica to serve",
			w.provs[0].ServedOK, w.provs[1].ServedOK)
	}
	if got := w.metrics().nearestHit.Value(); got != 1 {
		t.Fatalf("replic.route.nearest_hit = %d, want 1", got)
	}
	// The serving provider recorded the requester's region.
	dst := make([]float64, 2)
	w.provs[1].Demand().LocalRegionRates(obj, w.provs[1].Node().Now(), dst)
	if dst[1] == 0 || dst[0] != 0 {
		t.Fatalf("demand region split = %v, want all in region 1", dst)
	}
}

// TestReplicHedgeCoversDownNearest: the nearest holder is down but still
// directory-listed; the hedge to the second-nearest answers long before
// the primary's timeout would.
func TestReplicHedgeCoversDownNearest(t *testing.T) {
	w := newWorld(t, testCfg(), 2, 2)
	obj := h(4)
	data := make([]byte, 2048)
	w.provs[0].Put(obj, data, true)
	w.provs[1].Put(obj, data, false)
	w.nw.Run(500 * time.Millisecond) // let announces land
	w.provs[1].Node().Crash()

	var gotErr error
	var gotAt time.Duration
	done := 0
	w.clients[1].Node().After(time.Second, func() {
		w.clients[1].Get(obj, 5*time.Second, func(got []byte, err error) {
			done++
			gotErr = err
			gotAt = w.clients[1].Node().Now()
		})
	})
	w.nw.Run(20 * time.Second)
	if done != 1 || gotErr != nil {
		t.Fatalf("done=%d err=%v", done, gotErr)
	}
	if w.metrics().hedgeFired.Value() == 0 {
		t.Fatal("replic.route.hedge_fired never incremented")
	}
	// The hedge (500ms) beat the 5s primary timeout by a wide margin.
	if gotAt > 3*time.Second {
		t.Fatalf("fetch completed at %v; hedge should have answered around 1.5s", gotAt)
	}
}

// TestReplicDisabledIsStatic: a zero config serves fetches in directory
// order and never replicates, whatever the demand.
func TestReplicDisabledIsStatic(t *testing.T) {
	w := newWorld(t, Config{}, 3, 4)
	obj := h(5)
	data := make([]byte, 1024)
	w.provs[0].Put(obj, data, true)

	var okPtrs []*int
	for c := range w.clients {
		ok, _ := w.hammer(c, obj, time.Second, 30*time.Second, 500*time.Millisecond)
		okPtrs = append(okPtrs, ok)
	}
	w.nw.Run(60 * time.Second)
	if got := w.dir.NumHolders(obj); got != 1 {
		t.Fatalf("disabled layer grew replicas: holders = %d", got)
	}
	for _, p := range w.provs[1:] {
		if p.NumHeld() != 0 {
			t.Fatal("disabled layer pushed a replica")
		}
	}
	if w.provs[0].Resil() != nil {
		t.Fatal("disabled provider allocated a resilience client")
	}
	oks := 0
	for _, p := range okPtrs {
		oks += *p
	}
	if oks == 0 {
		t.Fatal("no successful static fetches recorded")
	}
}

// TestReplicFetchFailover: the origin is the only real holder; a stale
// registration points at a provider that released. The client fails over
// past the stale holder and still completes.
func TestReplicFetchFailover(t *testing.T) {
	w := newWorld(t, testCfg(), 2, 2)
	obj := h(6)
	data := make([]byte, 512)
	w.provs[0].Put(obj, data, true)
	// Stale registration: provs[1] announces but never installs.
	w.dir.onAnnounce(0, announceReq{Object: obj, Holder: w.provs[1].Node().ID()})

	done := 0
	w.clients[1].Node().After(time.Second, func() {
		w.clients[1].Get(obj, 2*time.Second, func(got []byte, err error) {
			done++
			if err != nil || len(got) != len(data) {
				t.Errorf("failover Get: len=%d err=%v", len(got), err)
			}
		})
	})
	w.nw.Run(10 * time.Second)
	if done != 1 {
		t.Fatalf("done ran %d times", done)
	}

	// And when no holder has the bytes at all, the error is terminal.
	missing := h(7)
	w.dir.onAnnounce(0, announceReq{Object: missing, Holder: w.provs[1].Node().ID()})
	var lastErr error
	w.clients[0].Node().After(time.Second, func() {
		w.clients[0].Get(missing, 2*time.Second, func(_ []byte, err error) { lastErr = err })
	})
	w.nw.Run(30 * time.Second)
	if !errors.Is(lastErr, ErrNoReplica) {
		t.Fatalf("missing-object err = %v, want ErrNoReplica", lastErr)
	}
	// An object the directory has never heard of fails the same way.
	w.clients[0].Node().After(time.Second, func() {
		w.clients[0].Get(h(8), 2*time.Second, func(_ []byte, err error) { lastErr = err })
	})
	w.nw.Run(40 * time.Second)
	if !errors.Is(lastErr, ErrNoReplica) {
		t.Fatalf("unknown-object err = %v, want ErrNoReplica", lastErr)
	}
}

// TestReplicRestartReannounces: a provider outage re-registers its held
// objects on restart, idempotently — the directory neither loses nor
// duplicates the registration.
func TestReplicRestartReannounces(t *testing.T) {
	w := newWorld(t, testCfg(), 2, 1)
	obj := h(9)
	w.provs[0].Put(obj, make([]byte, 256), true)
	w.nw.Run(time.Second)
	if w.dir.NumHolders(obj) != 1 {
		t.Fatalf("holders = %d", w.dir.NumHolders(obj))
	}
	w.provs[0].Node().Crash()
	w.nw.Run(10 * time.Second) // ticks fire while down and must do nothing
	w.provs[0].Node().Restart()
	w.nw.Run(20 * time.Second)
	if got := w.dir.NumHolders(obj); got != 1 {
		t.Fatalf("holders after crash/restart cycle = %d, want exactly 1", got)
	}
	if !w.provs[0].Holds(obj) {
		t.Fatal("replica lost across restart")
	}
}
