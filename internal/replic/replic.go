// Package replic is the demand-chasing replication layer: providers track
// per-object request rates with exponentially-decayed counters, advertise
// hot objects to their neighbor providers (hive-style, after swarm's
// bzz/hive neighbor gossip), push replicas toward the regions the demand
// is coming from, and garbage-collect replicas back toward a configured
// floor as popularity fades. Clients gain nearest-replica routing: holder
// candidates are ranked by the resilience layer's per-peer smoothed-RTT
// estimates, falling back to the region matrix's one-way delays for peers
// never contacted, with a hedge fetch to the second-nearest holder when
// the nearest is slow.
//
// The paper's §3 tension motivates the package: feudal platforms chase
// demand with CDNs while the decentralized alternatives surveyed serve
// every flash crowd from whatever static replica set they started with.
// X18 measured the collapse that causes; X19 measures what this layer
// buys back.
//
// Everything is seed-deterministic. Demand decay is a pure function of
// observation times (no wall clock), every protocol step runs on virtual
// time through node-local scheduling, advert and push fan-out iterate
// objects and peers in sorted order, and the layer draws no randomness at
// all — two runs with the same seed replicate and route identically at
// any trial-worker count or shard layout.
//
// A zero Config is the off switch: providers serve what they were given
// and never tick, clients fetch from holders in directory order with the
// caller's fixed timeout, no metrics register, and no extra events or RNG
// draws occur — so wiring the layer behind a disabled-by-default config
// field leaves existing goldens byte-identical.
//
// Metric names (network-scoped, see DESIGN.md §10):
//
//	replic.replicas.created   replicas installed by a push
//	replic.replicas.decayed   replicas released by popularity decay
//	replic.advert.sent        hive-style neighbor advertisements sent
//	replic.push.bytes         payload bytes moved by replica pushes
//	replic.route.nearest_hit  client fetches answered by the top-ranked holder
//	replic.route.hedge_fired  hedge fetches launched to the second-nearest
//	replic.origin.byte_share  gauge: origin share of served payload bytes (set by X19)
package replic

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/resil"
)

// Config tunes the replication layer. The zero value disables it
// entirely; Defaults() is the enabled configuration X19's adaptive arm
// runs with.
type Config struct {
	// Enabled turns the layer on. When false providers never tick,
	// advertise, push, or release, and clients degrade to fixed-timeout
	// directory-order fetching.
	Enabled bool
	// FloorK is the replica floor: garbage collection never takes an
	// object below this many holders, whatever its demand (default 2).
	FloorK int
	// Cap bounds replica growth however hot an object gets (default 6).
	Cap int
	// HotRate and ColdRate are the hysteresis thresholds in requests per
	// second of decayed swarm-wide demand: a holder advertises and
	// replicates above HotRate (default 0.5), and offers replicas back to
	// the directory below ColdRate (default 0.2). The gap between them is
	// what keeps a rate hovering near one threshold from flapping
	// replicas in and out.
	HotRate  float64
	ColdRate float64
	// PerReplicaRate is the demand one replica is sized to absorb, in
	// req/s: the target replica count for a hot object is
	// FloorK + rate/PerReplicaRate, clamped to [FloorK, Cap]
	// (default 1.0).
	PerReplicaRate float64
	// HalfLife is the demand counter decay half-life (default 30s).
	HalfLife time.Duration
	// TickEvery is the provider maintenance cadence: decay, advert, push,
	// and release decisions all happen on this period (default 15s).
	TickEvery time.Duration
	// HedgeAfter is how long a client waits on the nearest holder before
	// hedging to the second-nearest (default 1s). Hedging is replic-level
	// — across holders — and composes with any per-peer resilience below.
	HedgeAfter time.Duration
	// Resilience, when enabled, carries client fetches and provider
	// control traffic on the adaptive transport; its per-peer SRTT
	// estimates then drive nearest-replica ranking.
	Resilience resil.Config
	// Overload, when enabled, puts the directory's control endpoints and
	// each provider's replic.get behind server-side overload control
	// (bounded queue, adaptive admission, priority control lane) — see
	// internal/overload. The zero value is a pure passthrough.
	Overload overload.Config
}

// Defaults returns the enabled configuration used by X19's adaptive arm.
func Defaults() Config {
	return Config{Enabled: true}.withDefaults()
}

func (c Config) withDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.FloorK == 0 {
		c.FloorK = 2
	}
	if c.Cap == 0 {
		c.Cap = 6
	}
	if c.HotRate == 0 {
		c.HotRate = 0.5
	}
	if c.ColdRate == 0 {
		c.ColdRate = 0.2
	}
	if c.PerReplicaRate == 0 {
		c.PerReplicaRate = 1.0
	}
	if c.HalfLife == 0 {
		c.HalfLife = 30 * time.Second
	}
	if c.TickEvery == 0 {
		c.TickEvery = 15 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = time.Second
	}
	if c.FloorK < 1 || c.Cap < c.FloorK {
		panic(fmt.Sprintf("replic: need 1 <= FloorK <= Cap, got FloorK=%d Cap=%d", c.FloorK, c.Cap))
	}
	if c.ColdRate >= c.HotRate {
		panic(fmt.Sprintf("replic: hysteresis needs ColdRate < HotRate, got %g >= %g", c.ColdRate, c.HotRate))
	}
	return c
}

// TargetReplicas maps a decayed swarm-wide demand rate to the replica
// count the layer aims for: the floor plus one replica per
// PerReplicaRate of demand, clamped into [FloorK, Cap]. Degenerate rates
// (negative, NaN) clamp to the floor, so the result is a total function —
// the repo-root property test pins FloorK <= target <= Cap for every
// input.
func (c Config) TargetReplicas(rate float64) int {
	t := c.FloorK
	if rate > 0 && rate == rate { // NaN-safe
		extra := rate / c.PerReplicaRate
		if extra >= float64(c.Cap) { // also catches +Inf, where int() is undefined
			return c.Cap
		}
		t += int(extra)
	}
	if t < c.FloorK {
		t = c.FloorK
	}
	if t > c.Cap {
		t = c.Cap
	}
	return t
}

// replicMetrics is the package's network-scoped metric bundle, resolved
// once per registry via Memo (see DESIGN.md §10 for the name table).
type replicMetrics struct {
	created    *obs.Counter
	decayed    *obs.Counter
	advertSent *obs.Counter
	pushBytes  *obs.Counter
	nearestHit *obs.Counter
	hedgeFired *obs.Counter
}

func metricsFor(r *obs.Registry) *replicMetrics {
	return r.Memo("replic", func() any {
		return &replicMetrics{
			created:    r.Counter("replic.replicas.created"),
			decayed:    r.Counter("replic.replicas.decayed"),
			advertSent: r.Counter("replic.advert.sent"),
			pushBytes:  r.Counter("replic.push.bytes"),
			nearestHit: r.Counter("replic.route.nearest_hit"),
			hedgeFired: r.Counter("replic.route.hedge_fired"),
		}
	}).(*replicMetrics)
}
