// Property tests (testing/quick): for randomly drawn populations and
// seeds, the substrates must uphold their contracts — gossip with
// anti-entropy converges to every reachable member, the DHT resolves every
// stored key, and any scale-sweep cell is a pure function of its seed.
// These are the invariants the X15 scale sweep's convergence column
// quantifies; here they are checked at property granularity.
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/gossip"
	"repro/internal/overload"
	"repro/internal/replic"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/storage/chunker"
	"repro/internal/workload"
)

// quickCfg bounds the draw count (each case builds several simulated
// worlds) and fixes the generator seed so failures reproduce.
func quickCfg(seed int64, count int) *quick.Config {
	return &quick.Config{MaxCount: count, Rand: rand.New(rand.NewSource(seed))}
}

// clampPop maps an arbitrary byte to a population in [16, 64].
func clampPop(raw uint8) int { return 16 + int(raw)%49 }

// TestQuickGossipConverges: with a connected overlay and anti-entropy
// repair enabled, every member eventually holds every published item,
// whatever the seed and population.
func TestQuickGossipConverges(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := clampPop(rawN)
		nw := simnet.New(seed % (1 << 30))
		members := make([]*gossip.Member, n)
		ids := make([]simnet.NodeID, n)
		for i := range members {
			node := nw.AddNode()
			ids[i] = node.ID()
			members[i] = gossip.NewMember(node, gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
		}
		for i, m := range members {
			// Ring + skip links: connected at any n, diameter O(log n).
			m.SetPeers([]simnet.NodeID{
				ids[(i+1)%n], ids[(i+2)%n], ids[(i+n/2)%n], ids[(i+n-1)%n],
			})
		}
		const nItems = 4
		for i := 0; i < nItems; i++ {
			data := fmt.Sprintf("quick-item-%d", i)
			it := gossip.Item{ID: cryptoutil.SumHash([]byte(data)), Data: data, Size: len(data)}
			src := members[(i*7)%n]
			nw.Schedule(time.Duration(i)*10*time.Second, func() { src.Publish(it) })
		}
		nw.Run(10 * time.Minute)
		for _, m := range members {
			if m.Len() != nItems {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1001, 6)); err != nil {
		t.Error(err)
	}
}

// TestQuickDHTResolvesStoredKeys: once the population has bootstrapped and
// stores settle, every stored key resolves from every probed reader. K is
// left at the Kademlia default (20), which exceeds these populations'
// bucket occupancy — resolution failures would mean routing or storage
// logic lost data, not statistical misses.
func TestQuickDHTResolvesStoredKeys(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := clampPop(rawN)
		nw := simnet.New(seed % (1 << 30))
		peers := make([]*dht.Peer, n)
		for i := range peers {
			peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, dht.Config{})
		}
		for i := 1; i < n; i++ {
			p := peers[i]
			nw.After(time.Duration(i)*50*time.Millisecond, func() {
				p.Bootstrap(peers[0].Contact(), nil)
			})
		}
		nw.RunAll()
		const nKeys = 5
		keys := make([]dht.Key, nKeys)
		for i := range keys {
			keys[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("quick-key-%d", i)))
			peers[i%n].Put(keys[i], []byte{byte(i)}, nil)
		}
		nw.RunAll()
		ok := true
		for r := 1; r < n; r += 7 {
			for _, k := range keys {
				found := false
				peers[r].Get(k, func(_ []byte, f bool) { found = f })
				nw.RunAll()
				if !found {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(prop, quickCfg(2002, 6)); err != nil {
		t.Error(err)
	}
}

// TestQuickScaleCellDeterministic: a scale-sweep cell run twice with the
// same (subsystem, seed, N) yields identical convergence and traffic —
// the invariant the bench gate's byte-exact comparison rests on.
func TestQuickScaleCellDeterministic(t *testing.T) {
	subs := experiments.ScaleSubsystems()
	prop := func(seed int64, rawN uint8, which uint8) bool {
		n := clampPop(rawN) + 20 // [36, 84]: big enough for every subsystem
		sub := subs[int(which)%len(subs)]
		a := experiments.ScaleCellRun(sub, seed%(1<<30), n)
		b := experiments.ScaleCellRun(sub, seed%(1<<30), n)
		return a.Converged == b.Converged && a.Messages == b.Messages
	}
	if err := quick.Check(prop, quickCfg(3003, 6)); err != nil {
		t.Error(err)
	}
}

// TestQuickRTOEstimatorBounded: whatever sample sequence the estimator is
// fed — including timeout doublings interleaved after every sample — the
// published RTO never leaves the [Min, Max] clamp, and the whole state
// trajectory is a pure function of the sequence: a second estimator fed
// the same samples reports identical RTOs at every step.
func TestQuickRTOEstimatorBounded(t *testing.T) {
	cfg := resil.Defaults().RTO
	prop := func(raw []uint32, timeouts uint8) bool {
		a, b := resil.NewEstimator(cfg), resil.NewEstimator(cfg)
		for i, r := range raw {
			// Samples span negative to far beyond Max (raw is up to ~4295s).
			s := time.Duration(int64(r))*time.Millisecond - time.Second
			a.Sample(s)
			b.Sample(s)
			if a.RTO() != b.RTO() || a.SRTT() != b.SRTT() {
				return false
			}
			if a.RTO() < cfg.Min || a.RTO() > cfg.Max {
				return false
			}
			if i%4 == int(timeouts)%4 {
				a.OnTimeout()
				b.OnTimeout()
				if a.RTO() != b.RTO() || a.RTO() > cfg.Max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(4004, 50)); err != nil {
		t.Error(err)
	}
}

// TestQuickBackoffDeterministic: the retry delay is a pure function of
// (network seed, node id, call, attempt) — two independently constructed
// schedules agree everywhere — and every delay stays inside the jittered
// exponential envelope [Base·(1−J), Cap·(1+J)].
func TestQuickBackoffDeterministic(t *testing.T) {
	cfg := resil.Defaults().Backoff
	lo := time.Duration(float64(cfg.Base) * (1 - cfg.Jitter))
	hi := time.Duration(float64(cfg.Cap) * (1 + cfg.Jitter))
	prop := func(seed int64, node uint16, call uint64, rawAttempt uint8) bool {
		a := resil.NewBackoff(cfg, seed, simnet.NodeID(node))
		b := resil.NewBackoff(cfg, seed, simnet.NodeID(node))
		attempt := 1 + int(rawAttempt)%10
		d := a.Delay(call, attempt)
		if d != b.Delay(call, attempt) {
			return false
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(prop, quickCfg(5005, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickChunkerDeterministic: two chunkers built from the same derived
// polynomial cut any input at byte-identical boundaries, and a reused
// chunker reproduces its own cuts — boundary placement is a pure function
// of (polynomial, bounds, content). Cross-user dedup depends on this: two
// uploaders only produce identical chunks if their chunkers agree.
func TestQuickChunkerDeterministic(t *testing.T) {
	prop := func(polSeed int64, raw []byte, sel uint8) bool {
		avg := 256 << (sel % 3)
		cfg := chunker.Defaults(avg)
		cfg.Pol = chunker.DerivePol(polSeed)
		a, err := chunker.New(cfg)
		if err != nil {
			return false
		}
		b, err := chunker.New(cfg)
		if err != nil {
			return false
		}
		data := append(raw, raw...) // stretch tiny draws into multi-chunk inputs
		for len(data) < 4*avg {
			data = append(data, raw...)
			data = append(data, byte(len(data)))
		}
		cutsA := a.Cuts(data)
		cutsB := b.Cuts(data)
		cutsA2 := a.Cuts(data)
		if len(cutsA) != len(cutsB) || len(cutsA) != len(cutsA2) {
			return false
		}
		for i := range cutsA {
			if cutsA[i] != cutsB[i] || cutsA[i] != cutsA2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1701, 40)); err != nil {
		t.Error(err)
	}
}

// TestQuickChunkerLocality: a one-byte edit changes O(1) chunks — the
// multiset of chunks before and after the edit differs by at most the
// chunks overlapping one resynchronisation window, never the whole file.
// This is the property that keeps re-uploading an edited document cheap.
func TestQuickChunkerLocality(t *testing.T) {
	ck, err := chunker.New(chunker.Defaults(512))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, rawAt uint16, flip uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 32<<10)
		rng.Read(data)
		edited := append([]byte{}, data...)
		at := int(rawAt) % len(edited)
		edited[at] ^= flip | 1 // always a real change
		before := map[string]int{}
		ck.Split(data, func(c []byte) { before[string(c)]++ })
		changed := 0
		ck.Split(edited, func(c []byte) {
			if before[string(c)] > 0 {
				before[string(c)]--
			} else {
				changed++
			}
		})
		// The edit dirties the chunk containing it; boundary movement can
		// additionally merge/split its neighbours. Anything above a small
		// constant means the edit's influence escaped the window.
		return changed <= 4
	}
	if err := quick.Check(prop, quickCfg(1702, 30)); err != nil {
		t.Error(err)
	}
}

// TestQuickDedupOrderInvariant: a localstore's physical and logical byte
// accounting is independent of upload order — content-address dedup is
// commutative, so whichever user uploads first, the fleet stores the same
// bytes and reports the same dedup ratio.
func TestQuickDedupOrderInvariant(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rawN)%12
		// A chunk population with deliberate duplicates.
		chunks := make([][]byte, 0, 2*n)
		for i := 0; i < n; i++ {
			c := make([]byte, 64+rng.Intn(512))
			rng.Read(c)
			chunks = append(chunks, c)
			if rng.Intn(2) == 0 {
				chunks = append(chunks, c) // duplicate upload
			}
		}
		put := func(order []int) (int64, int64, float64) {
			ls := storage.NewLocalStore(storage.LocalStoreConfig{Capacity: 1 << 20})
			for _, i := range order {
				if !ls.Put(cryptoutil.SumHash(chunks[i]), chunks[i]) {
					t.Fatal("put refused below capacity")
				}
			}
			return ls.PhysicalBytes(), ls.LogicalBytes(), ls.DedupRatio()
		}
		fwd := make([]int, len(chunks))
		for i := range fwd {
			fwd[i] = i
		}
		shuffled := append([]int{}, fwd...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		p1, l1, r1 := put(fwd)
		p2, l2, r2 := put(shuffled)
		return p1 == p2 && l1 == l2 && r1 == r2
	}
	if err := quick.Check(prop, quickCfg(1703, 40)); err != nil {
		t.Error(err)
	}
}

// TestQuickZipfChiSquare: for any catalog size and skew, empirical draw
// frequencies from the alias table fit the exact pmf under a chi-square
// goodness-of-fit test. The critical value comes from the Wilson–Hilferty
// approximation at z ≈ 3.29 (the 99.95th percentile), so a false failure
// across the whole quick batch is vanishingly unlikely while a broken
// alias table (wrong residues, swapped buckets) fails immediately.
func TestQuickZipfChiSquare(t *testing.T) {
	prop := func(seed int64, rawN, rawS uint8) bool {
		n := 8 + int(rawN)%25      // catalog size in [8, 32]
		s := float64(rawS%16) / 10 // skew in [0, 1.5]
		z := workload.NewZipf(n, s)
		rng := workload.Rand(seed%(1<<30), 0xC41)
		const draws = 50000
		counts := make([]float64, n)
		for i := 0; i < draws; i++ {
			counts[z.Draw(rng)]++
		}
		var chi2 float64
		for i, c := range counts {
			exp := z.P(i) * draws
			chi2 += (c - exp) * (c - exp) / exp
		}
		df := float64(n - 1)
		const zCrit = 3.29
		crit := df * math.Pow(1-2/(9*df)+zCrit*math.Sqrt(2/(9*df)), 3)
		if chi2 > crit {
			t.Logf("n=%d s=%.1f: chi2 %.1f > crit %.1f", n, s, chi2, crit)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(181, 20)); err != nil {
		t.Error(err)
	}
}

// TestQuickDiurnalMeanWithin1pct: whatever the amplitude, night floor,
// and period, the normalizer keeps the time-averaged rate within 1% of
// the configured mean — the workload engine's "same total demand, shaped
// differently" contract.
func TestQuickDiurnalMeanWithin1pct(t *testing.T) {
	prop := func(rawMean, rawAmp, rawFloor uint8, rawPeriod uint16) bool {
		cfg := workload.DiurnalConfig{
			Mean:   0.05 + float64(rawMean)/32,  // [0.05, 8]
			Amp:    float64(rawAmp%100) / 100,   // [0, 1)
			Floor:  float64(rawFloor%150) / 100, // [0, 1.5)
			Period: time.Duration(1+int(rawPeriod)%1440) * time.Minute,
		}
		d := workload.NewDiurnal(cfg)
		const steps = 10000
		var sum float64
		for i := 0; i < steps; i++ {
			at := time.Duration((float64(i) + 0.5) / steps * float64(cfg.Period))
			sum += d.Rate(at)
		}
		avg := sum / steps
		if math.Abs(avg-cfg.Mean) > 0.01*cfg.Mean {
			t.Logf("cfg %+v: time-averaged %.4f vs mean %.4f", cfg, avg, cfg.Mean)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(182, 50)); err != nil {
		t.Error(err)
	}
}

// TestQuickFlashRampHitsPeak: for any spike geometry the multiplier rides
// the ramp monotonically, tops out at exactly the configured peak, and
// never undershoots baseline afterwards.
func TestQuickFlashRampHitsPeak(t *testing.T) {
	prop := func(rawPeak uint16, rawStart, rawRamp, rawDecay uint8) bool {
		f := workload.Flash{
			Object: 0,
			Start:  time.Duration(rawStart) * time.Second,
			Ramp:   time.Duration(1+int(rawRamp)%240) * time.Second,
			Peak:   2 + float64(rawPeak%5000),
			Decay:  time.Duration(int(rawDecay)%300) * time.Second,
		}
		if f.Multiplier(f.Start+f.Ramp) != f.Peak {
			t.Logf("%+v: multiplier at ramp top %.3f, want exactly %.3f", f, f.Multiplier(f.Start+f.Ramp), f.Peak)
			return false
		}
		prev := 0.0
		for i := 0; i <= 16; i++ {
			at := f.Start + f.Ramp*time.Duration(i)/16
			m := f.Multiplier(at)
			if m < prev || m < 1 {
				return false
			}
			prev = m
		}
		for i := 1; i <= 16; i++ {
			if m := f.Multiplier(f.Start + f.Ramp + f.Decay*time.Duration(i)); m < 1 || m > f.Peak {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(183, 100)); err != nil {
		t.Error(err)
	}
}

// TestQuickReplicRateMergeCommutes: the decayed-rate counter's Merge is
// commutative bit for bit whatever the observation streams, an arbitrary
// split of one stream across two counters merges back to the combined
// counter's value, and rebuilding from the same draws is bitwise
// deterministic — the properties that let per-holder demand views
// combine in any advert arrival order without double counting.
func TestQuickReplicRateMergeCommutes(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawHL uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		halfLife := time.Duration(1+int(rawHL)%120) * time.Second
		n := 2 + int(rawN)%60
		a, b := replic.NewRate(halfLife), replic.NewRate(halfLife)
		combined := replic.NewRate(halfLife)
		now := time.Duration(0)
		for i := 0; i < n; i++ {
			now += time.Duration(rng.Int63n(int64(20 * time.Second)))
			w := 0.1 + rng.Float64()*5
			combined.AddAt(now, w)
			if rng.Intn(2) == 0 {
				a.AddAt(now, w)
			} else {
				b.AddAt(now, w)
			}
		}
		ab, ba := replic.Merge(a, b), replic.Merge(b, a)
		if ab != ba {
			t.Logf("Merge not commutative: %v vs %v", ab, ba)
			return false
		}
		// The merged split tracks the combined stream (exact in real
		// arithmetic; FP regrouping leaves ~ulp-scale differences).
		got, want := ab.Value(now), combined.Value(now)
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Logf("split+merge %.17g vs combined %.17g", got, want)
			return false
		}
		// Determinism: replaying the same draws yields the same bits.
		rng2 := rand.New(rand.NewSource(seed))
		a2 := replic.NewRate(halfLife)
		now2 := time.Duration(0)
		for i := 0; i < n; i++ {
			now2 += time.Duration(rng2.Int63n(int64(20 * time.Second)))
			w := 0.1 + rng2.Float64()*5
			if rng2.Intn(2) == 0 {
				a2.AddAt(now2, w)
			}
		}
		if now2 != now {
			t.Logf("replay diverged: clock %v vs %v", now2, now)
			return false
		}
		return a2.Value(now) == a.Value(now)
	}
	if err := quick.Check(prop, quickCfg(191, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickReplicTargetWithinBounds: whatever swarm rate the demand
// tracker reports — including zero, negative garbage, NaN, and ±Inf —
// the replica target stays within [FloorK, Cap].
func TestQuickReplicTargetWithinBounds(t *testing.T) {
	prop := func(rawFloor, rawSpan uint8, rate float64, special uint8) bool {
		floor := 1 + int(rawFloor)%6
		cap := floor + int(rawSpan)%8
		switch special % 5 {
		case 1:
			rate = math.NaN()
		case 2:
			rate = math.Inf(1)
		case 3:
			rate = math.Inf(-1)
		case 4:
			rate = -rate
		}
		cfg := replic.Config{Enabled: true, FloorK: floor, Cap: cap}
		got := cfg.TargetReplicas(rate)
		if got < floor || got > cap {
			t.Logf("TargetReplicas(%v) = %d outside [%d, %d]", rate, got, floor, cap)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(193, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickReplicRankTotalOrder: nearest-replica ranking is a total
// order — any permutation of the same holder set ranks to the identical
// sequence, estimates are non-decreasing along the ranked order with node
// id breaking ties, and with no SRTT measurements the order is exactly
// the region-matrix one-way delays' order.
func TestQuickReplicRankTotalOrder(t *testing.T) {
	prop := func(seed int64, rawN, rawR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rawN)%12
		regions := 1 + int(rawR)%4
		extra := make([][]time.Duration, regions)
		for i := range extra {
			extra[i] = make([]time.Duration, regions)
			for j := range extra[i] {
				if i != j {
					extra[i][j] = time.Duration(1+rng.Int63n(200)) * time.Millisecond
				}
			}
		}
		regionOf := map[simnet.NodeID]int{}
		holders := make([]simnet.NodeID, n)
		srtt := map[simnet.NodeID]time.Duration{}
		for i := range holders {
			id := simnet.NodeID(i + 1)
			holders[i] = id
			regionOf[id] = rng.Intn(regions)
			if rng.Intn(2) == 0 {
				srtt[id] = time.Duration(1+rng.Int63n(500)) * time.Millisecond
			}
		}
		measured := func(id simnet.NodeID) (time.Duration, bool) {
			d, ok := srtt[id]
			return d, ok
		}
		r := replic.NewRouter(rng.Intn(regions), regionOf, extra, measured)
		want := r.Rank(append([]simnet.NodeID(nil), holders...))
		for trial := 0; trial < 4; trial++ {
			perm := append([]simnet.NodeID(nil), holders...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			got := r.Rank(perm)
			for i := range want {
				if got[i] != want[i] {
					t.Logf("permutation ranked %v, want %v", got, want)
					return false
				}
			}
		}
		for i := 1; i < len(want); i++ {
			a, b := r.Estimate(want[i-1]), r.Estimate(want[i])
			if a > b || (a == b && want[i-1] > want[i]) {
				t.Logf("rank not ordered at %d: %v(%v) before %v(%v)", i, want[i-1], a, want[i], b)
				return false
			}
		}
		// Matrix-consistency: with no measurements at all the order is the
		// one-way delay order.
		noMeas := replic.NewRouter(0, regionOf, extra, func(simnet.NodeID) (time.Duration, bool) { return 0, false })
		ranked := noMeas.Rank(append([]simnet.NodeID(nil), holders...))
		for i := 1; i < len(ranked); i++ {
			if noMeas.Estimate(ranked[i-1]) > noMeas.Estimate(ranked[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(197, 150)); err != nil {
		t.Error(err)
	}
}

// overloadQuickWorld builds one saturable overload world: a server on a
// jitter-free constrained uplink (so reply order is exactly queue order —
// the discipline under test, not link noise) behind the given config,
// plus n zero-profile clients.
func overloadQuickWorld(seed int64, n int, cfg overload.Config) (*simnet.Network, *overload.Server, *simnet.RPCNode, []*simnet.RPCNode) {
	nw := simnet.New(seed)
	srvNode := nw.AddNodeWithProfile(simnet.LinkProfile{
		Latency: 25 * time.Millisecond, UplinkBps: 1e6, DownlinkBps: 20e6,
	})
	srv := simnet.NewRPCNode(srvNode)
	ov := overload.New(srv, cfg)
	clients := make([]*simnet.RPCNode, n)
	for i := range clients {
		clients[i] = simnet.NewRPCNode(nw.AddNode())
	}
	return nw, ov, srv, clients
}

// TestQuickOverloadLimitWithinBounds: whatever the drawn AIMD bounds,
// queue length, and offered load, the admission controller's concurrency
// limit stays inside [MinLimit, MaxLimit] at every sampled instant —
// additive increase clamps at the ceiling and the multiplicative cut at
// the floor, never beyond.
func TestQuickOverloadLimitWithinBounds(t *testing.T) {
	prop := func(seed int64, rawMin, rawSpan, rawQ, rawClients uint8) bool {
		minL := 1 + int(rawMin)%4
		maxL := minL + int(rawSpan)%8
		cfg := overload.Config{
			Enabled: true, QueueLen: 4 + int(rawQ)%32,
			Target: 200 * time.Millisecond, SLO: time.Second,
			MinLimit: minL, MaxLimit: maxL,
			RetryAfterBase: 250 * time.Millisecond,
		}
		n := 4 + int(rawClients)%12
		nw, ov, srv, clients := overloadQuickWorld(seed%(1<<30), n, cfg)
		ov.Protect("get", func(from simnet.NodeID, req any) (any, int) { return req, 32 << 10 })
		inBounds := true
		check := func() {
			if l := ov.Limit(); l < float64(minL) || l > float64(maxL) {
				inBounds = false
			}
		}
		for i := 0; i < 60; i++ {
			at := time.Duration(i) * time.Second
			nw.Schedule(at, check)
			for c := 0; c < n; c++ {
				c := c
				nw.Schedule(at+time.Duration(c)*37*time.Millisecond, func() {
					clients[c].Call(srv.Node().ID(), "get", c, 64, 30*time.Second, func(any, error) {})
				})
			}
		}
		nw.Run(2 * time.Minute)
		check()
		return inBounds
	}
	if err := quick.Check(prop, quickCfg(2020, 4)); err != nil {
		t.Error(err)
	}
}

// TestQuickOverloadAdmissionDeterministic: the full admission transcript
// — per-request admit/shed outcome in completion order plus every
// overload counter — is a pure function of (seed, population, request
// count). Two runs of the same draw must match byte for byte; this is
// the property the X20 bench golden pins at experiment scale.
func TestQuickOverloadAdmissionDeterministic(t *testing.T) {
	run := func(seed int64, n, reqs int) string {
		cfg := overload.Config{
			Enabled: true, QueueLen: 8,
			Target: 200 * time.Millisecond, SLO: time.Second,
			MinLimit: 1, MaxLimit: 4, RetryAfterBase: 250 * time.Millisecond,
		}
		nw, ov, srv, clients := overloadQuickWorld(seed, n, cfg)
		ov.Protect("get", func(from simnet.NodeID, req any) (any, int) { return req, 24 << 10 })
		var transcript []string
		for c := 0; c < n; c++ {
			c := c
			for k := 0; k < reqs; k++ {
				k := k
				nw.Schedule(time.Duration(c*73+k*211)*time.Millisecond, func() {
					clients[c].Call(srv.Node().ID(), "get", k, 64, 30*time.Second, func(resp any, err error) {
						transcript = append(transcript, fmt.Sprintf("%d.%d:%v:%v", c, k, overload.IsShed(resp), err == nil))
					})
				})
			}
		}
		nw.Run(2 * time.Minute)
		reg := nw.Obs()
		return fmt.Sprintf("%v|off=%d adm=%d q=%d shed=%d codel=%d", transcript,
			reg.Counter("overload.offered").Value(), reg.Counter("overload.admitted").Value(),
			reg.Counter("overload.queued").Value(), reg.Counter("overload.shed").Value(),
			reg.Counter("overload.codel.dropped").Value())
	}
	prop := func(seed int64, rawN, rawR uint8) bool {
		s := seed % (1 << 30)
		n := 2 + int(rawN)%8
		reqs := 4 + int(rawR)%16
		return run(s, n, reqs) == run(s, n, reqs)
	}
	if err := quick.Check(prop, quickCfg(2021, 4)); err != nil {
		t.Error(err)
	}
}

// TestQuickOverloadSurvivorFIFO: however the CoDel front-drop and the
// admission sheds carve up a saturated queue, the requests that survive
// to be served complete in per-sender FIFO order — dropping from the
// front can only remove elements, never reorder the rest. (Jitter-free
// links in overloadQuickWorld make reply arrival order equal to service
// order, so a violation here is a queue-discipline bug, not link noise.)
func TestQuickOverloadSurvivorFIFO(t *testing.T) {
	prop := func(seed int64, rawSenders, rawReqs uint8) bool {
		nSend := 2 + int(rawSenders)%8
		nReq := 4 + int(rawReqs)%24
		cfg := overload.Config{
			Enabled: true, QueueLen: 8,
			Target: 100 * time.Millisecond, SLO: 500 * time.Millisecond,
			MinLimit: 1, MaxLimit: 2, RetryAfterBase: 100 * time.Millisecond,
		}
		nw, ov, srv, clients := overloadQuickWorld(seed%(1<<30), nSend, cfg)
		ov.Protect("get", func(from simnet.NodeID, req any) (any, int) { return req, 24 << 10 })
		served := make([][]int, nSend)
		for c := 0; c < nSend; c++ {
			c := c
			for k := 0; k < nReq; k++ {
				k := k
				nw.Schedule(time.Duration(c*61+k*157)*time.Millisecond, func() {
					clients[c].Call(srv.Node().ID(), "get", k, 64, 30*time.Second, func(resp any, err error) {
						if err == nil && !overload.IsShed(resp) {
							served[c] = append(served[c], k)
						}
					})
				})
			}
		}
		nw.Run(2 * time.Minute)
		for c := range served {
			for i := 1; i < len(served[c]); i++ {
				if served[c][i] <= served[c][i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(2022, 5)); err != nil {
		t.Error(err)
	}
}
