// Scale tests: a table-driven matrix of subsystem × population tier,
// driving exactly the X15 scale-sweep workloads (experiments.ScaleCellRun)
// plus a chain row with miner-specific invariants. Under -short only the
// small tier runs; the 10k big tier lives in TestScaleBig, gated behind
// SCALE=big or an explicit `-run TestScaleBig` selection so `go test ./...`
// stays fast.
package repro

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/experiments"
	"repro/internal/simnet"
)

// scaleRow is one cell of the scale matrix: subsystem × population tier,
// with the convergence floor the run must clear.
type scaleRow struct {
	subsystem string
	tier      string
	n         int
	short     bool // included in -short runs
	seed      int64
	minConv   float64
}

// scaleMatrix is the merge-gate portion of the matrix. The convergence
// floors encode what the substrate owes at each population: the raw RPC
// layer is lossless at any N, gossip's overlay floods completely, and the
// DHT is allowed the lookup-miss tail that grows with population (X15
// documents the curve).
var scaleMatrix = []scaleRow{
	{"simnet", "small", 100, true, 42, 1.0},
	{"simnet", "medium", 2000, false, 42, 1.0},
	{"dht", "small", 100, true, 42, 0.95},
	{"dht", "medium", 1000, false, 42, 0.85},
	{"gossip", "small", 100, true, 42, 0.99},
	{"gossip", "medium", 2000, false, 42, 0.99},
}

// scaleBigMatrix is the 10k-node tier (plus 5k for the curve), run by
// TestScaleBig only.
var scaleBigMatrix = []scaleRow{
	{"simnet", "big", 10000, false, 42, 1.0},
	{"dht", "big", 5000, false, 42, 0.85},
	{"dht", "big", 10000, false, 42, 0.85},
	{"gossip", "big", 10000, false, 42, 0.99},
}

func runScaleRow(t *testing.T, row scaleRow) {
	t.Helper()
	cell := experiments.ScaleCellRun(row.subsystem, row.seed, row.n)
	if cell.Converged < row.minConv {
		t.Errorf("%s at N=%d: converged %.1f%%, floor %.1f%%",
			row.subsystem, row.n, cell.Converged*100, row.minConv*100)
	}
	if cell.Messages <= 0 {
		t.Errorf("%s at N=%d: no traffic delivered", row.subsystem, row.n)
	}
}

func TestScaleMatrix(t *testing.T) {
	for _, row := range scaleMatrix {
		row := row
		t.Run(row.subsystem+"/"+row.tier, func(t *testing.T) {
			if testing.Short() && !row.short {
				t.Skip("medium tier skipped under -short")
			}
			runScaleRow(t, row)
		})
	}
	t.Run("chain/small", func(t *testing.T) {
		scaleChain(t, 202, 8, 2*time.Hour)
	})
}

// bigSelected reports whether the 10k tier was explicitly requested, via
// the SCALE=big environment variable or a -run selector naming the test.
func bigSelected() bool {
	if os.Getenv("SCALE") == "big" {
		return true
	}
	f := flag.Lookup("test.run")
	return f != nil && strings.Contains(f.Value.String(), "TestScaleBig")
}

// TestScaleBig is the nightly-style 10,000-node tier (`make scale`). It
// must finish well inside the X15 acceptance budget of 60 s wall.
func TestScaleBig(t *testing.T) {
	if !bigSelected() {
		t.Skip("big tier: set SCALE=big or select with -run TestScaleBig")
	}
	for _, row := range scaleBigMatrix {
		row := row
		t.Run(row.subsystem+"/"+row.tier, func(t *testing.T) {
			runScaleRow(t, row)
		})
	}
}

// hugeSelected reports whether the 100k sharded tier was explicitly
// requested, via SCALE=huge or a -run selector naming the test.
func hugeSelected() bool {
	if os.Getenv("SCALE") == "huge" {
		return true
	}
	f := flag.Lookup("test.run")
	return f != nil && strings.Contains(f.Value.String(), "TestScaleHuge")
}

// TestScaleHuge is the 100,000-node tier on the sharded engine — the
// merge-gate-optional rung of the huge sweep (the 1M rung is nightly-only
// via `feudalism scale`). Expect roughly a minute of wall time on one
// core; see EXPERIMENTS.md "Running at 1M".
func TestScaleHuge(t *testing.T) {
	if !hugeSelected() {
		t.Skip("huge tier: set SCALE=huge or select with -run TestScaleHuge")
	}
	rows := []scaleRow{
		{"simnet", "huge", 100_000, false, 42, 1.0},
		{"dht", "huge", 100_000, false, 42, 0.85},
		{"gossip", "huge", 100_000, false, 42, 0.99},
	}
	for _, row := range rows {
		row := row
		t.Run(row.subsystem+"/"+row.tier, func(t *testing.T) {
			cell := experiments.ScaleCellRunSharded(row.subsystem, row.seed, row.n, experiments.HugeShards, 0)
			if cell.Converged < row.minConv {
				t.Errorf("%s at N=%d (sharded): converged %.1f%%, floor %.1f%%",
					row.subsystem, row.n, cell.Converged*100, row.minConv*100)
			}
			if cell.Messages <= 0 {
				t.Errorf("%s at N=%d (sharded): no traffic delivered", row.subsystem, row.n)
			}
		})
	}
}

// scaleChain runs n miners with retargeting for the given horizon and
// checks the chain-specific invariants: full head convergence, expected
// height, difficulty raised by retargeting, and every miner productive.
func scaleChain(t *testing.T, seed int64, n int, horizon time.Duration) {
	t.Helper()
	if testing.Short() {
		t.Skip("scale test")
	}
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 9, // low: hashrate below will push it up via retarget
		TargetSpacing:     spacing,
		RetargetInterval:  20,
		Subsidy:           50,
	}
	miners := make([]*chain.Miner, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		ids[i] = node.ID()
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), cryptoutil.SumHash([]byte{byte(i), 0x5C}),
			2*float64(cfg.InitialDifficulty)/spacing.Seconds()/float64(n)) // 2 blocks/spacing initially
	}
	for i, m := range miners {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
		m.Start()
	}
	nw.Run(horizon)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	head := miners[0].Chain().HeadHash()
	for i, m := range miners {
		if m.Chain().HeadHash() != head {
			t.Fatalf("miner %d diverged", i)
		}
	}
	c := miners[0].Chain()
	if c.Height() < 400 {
		t.Errorf("height = %d over %v; expected ≥400", c.Height(), horizon)
	}
	// Retargeting should have raised difficulty above genesis (we mine 2x
	// faster than the target at genesis difficulty).
	if got := c.Head().Header.Difficulty; got <= cfg.InitialDifficulty {
		t.Errorf("difficulty = %d, want > %d after retargeting", got, cfg.InitialDifficulty)
	}
	// Every miner should have found blocks.
	for i, m := range miners {
		if m.BlocksFound() == 0 {
			t.Errorf("miner %d found nothing", i)
		}
	}
}
