// Scale smoke tests: larger populations than the unit tests use, ensuring
// the substrates hold up beyond toy sizes. Skipped under -short.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/simnet"
)

func TestScaleDHT150Peers(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	nw := simnet.New(201)
	const peers = 150
	ps := make([]*dht.Peer, peers)
	for i := range ps {
		ps[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, dht.Config{})
	}
	for i := 1; i < peers; i++ {
		i := i
		nw.After(time.Duration(i)*50*time.Millisecond, func() {
			ps[i].Bootstrap(ps[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(peers) * 100 * time.Millisecond)

	const keys = 40
	for i := 0; i < keys; i++ {
		ps[i%peers].Put(cryptoutil.SumHash([]byte(fmt.Sprintf("scale-%d", i))), []byte{byte(i)}, nil)
	}
	nw.Run(nw.Now() + 2*time.Minute)

	misses := 0
	for i := 0; i < keys; i++ {
		reader := ps[(i*37+11)%peers]
		found := false
		reader.Get(cryptoutil.SumHash([]byte(fmt.Sprintf("scale-%d", i))), func(v []byte, ok bool) { found = ok })
		nw.Run(nw.Now() + 30*time.Second)
		if !found {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d lookups missed at 150 peers", misses, keys)
	}
}

func TestScaleChainEightMinersWithRetargeting(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	nw := simnet.New(202)
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 9, // low: hashrate below will push it up via retarget
		TargetSpacing:     spacing,
		RetargetInterval:  20,
		Subsidy:           50,
	}
	const n = 8
	miners := make([]*chain.Miner, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		ids[i] = node.ID()
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), cryptoutil.SumHash([]byte{byte(i), 0x5C}),
			2*float64(cfg.InitialDifficulty)/spacing.Seconds()/n) // 2 blocks/spacing initially
	}
	for i, m := range miners {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
		m.Start()
	}
	nw.Run(2 * time.Hour)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	head := miners[0].Chain().HeadHash()
	for i, m := range miners {
		if m.Chain().HeadHash() != head {
			t.Fatalf("miner %d diverged", i)
		}
	}
	c := miners[0].Chain()
	if c.Height() < 400 {
		t.Errorf("height = %d over 2h; expected ≥400", c.Height())
	}
	// Retargeting should have raised difficulty above genesis (we mine 2x
	// faster than the target at genesis difficulty).
	if got := c.Head().Header.Difficulty; got <= cfg.InitialDifficulty {
		t.Errorf("difficulty = %d, want > %d after retargeting", got, cfg.InitialDifficulty)
	}
	// Every miner should have found blocks.
	for i, m := range miners {
		if m.BlocksFound() == 0 {
			t.Errorf("miner %d found nothing", i)
		}
	}
}

func TestScaleGossip120Members(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	nw := simnet.New(203)
	const n = 120
	members := make([]*gossip.Member, n)
	ids := make([]simnet.NodeID, n)
	for i := range members {
		members[i] = gossip.NewMember(nw.AddNode(), gossip.Config{Fanout: 4, AntiEntropyInterval: 30 * time.Second})
		ids[i] = members[i].Node().ID()
	}
	for i, m := range members {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	const items = 25
	for i := 0; i < items; i++ {
		members[(i*13)%n].Publish(gossip.Item{
			ID:   cryptoutil.SumHash([]byte(fmt.Sprintf("item-%d", i))),
			Data: i, Size: 200,
		})
	}
	nw.Run(10 * time.Minute)
	for i, m := range members {
		if m.Len() != items {
			t.Errorf("member %d has %d/%d items", i, m.Len(), items)
		}
	}
}
