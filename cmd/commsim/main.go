// Command commsim runs the group-communication comparisons of §3.2 with
// tunable parameters: deliverability under server failures across the four
// deployment models (experiment X3), socially-aware P2P delivery versus
// friend-graph degree and uptime (X4), and the metadata-exposure table.
//
// Usage:
//
//	commsim availability [-seed N] [-servers 10]
//	commsim social [-seed N] [-users 30]
//	commsim exposure [-servers 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "availability":
		fs := flag.NewFlagSet("availability", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		servers := fs.Int("servers", 10, "servers (and users, one per server)")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.CommAvailability(*seed, *servers, []float64{0, 0.1, 0.2, 0.3, 0.5}))
	case "social":
		fs := flag.NewFlagSet("social", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		users := fs.Int("users", 30, "user population")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.SocialP2P(*seed, *users, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95}))
	case "exposure":
		fs := flag.NewFlagSet("exposure", flag.ExitOnError)
		servers := fs.Int("servers", 10, "federation size")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.MetadataExposureTable(*servers))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: commsim availability|social|exposure [flags]`)
}
