// Command benchdiff compares two BENCH_*.json files produced by
// `feudalism bench -json` and exits nonzero when the new file regresses
// relative to the old one.
//
// Usage:
//
//	benchdiff [-tol F] [-time-tol F] old.json new.json
//
// A metric regresses when |new-old| > tol*|old| (a metric that was zero
// must stay exactly zero); a missing experiment or metric in the new file
// is always a regression, while extra ones are fine — adding coverage
// should never fail the gate. Wall time is compared only when -time-tol
// is positive and both files carry a timing section, and only in the slow
// direction. scripts/ci.sh runs this as the merge gate against the
// checked-in BENCH_baseline.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	tol := flag.Float64("tol", 0, "relative tolerance per metric (0 = exact match)")
	timeTol := flag.Float64("time-tol", 0, "relative wall-time slowdown tolerance (0 = ignore timing)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol F] [-time-tol F] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldFile, err := obs.LoadBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newFile, err := obs.LoadBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	problems := obs.Compare(oldFile, newFile, obs.Tolerances{Metric: *tol, Time: *timeTol})
	if len(problems) == 0 {
		fmt.Printf("benchdiff: OK (%d experiments, tol=%g time-tol=%g)\n",
			len(newFile.Experiments), *tol, *timeTol)
		return
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", p)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) between %s and %s\n",
		len(problems), flag.Arg(0), flag.Arg(1))
	os.Exit(1)
}
