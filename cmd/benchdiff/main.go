// Command benchdiff compares two BENCH_*.json files produced by
// `feudalism bench -json` and exits nonzero when the new file regresses
// relative to the old one.
//
// Usage:
//
//	benchdiff [-tol F] [-time-tol F] old.json new.json
//	benchdiff -history [-tput-tol F] [-tol F] old.json new.json
//
// A metric regresses when |new-old| > tol*|old| (a metric that was zero
// must stay exactly zero); a missing experiment or metric in the new file
// is always a regression, while extra ones are fine — adding coverage
// should never fail the gate. Wall time is compared only when -time-tol
// is positive and both files carry a timing section, and only in the slow
// direction. scripts/ci.sh runs this as the merge gate against the
// checked-in BENCH_baseline.json.
//
// -history is the nightly throughput gate: both files must come from
// `-timing` runs, and for every experiment present in both with timing it
// derives msgs/sec (net.msg.delivered over wall seconds) and fails when
// the new run's throughput drops more than -tput-tol below the old one
// (one-sided: getting faster never fails). Metric snapshots are still
// compared with -tol so a nightly that silently changed its workload is
// caught too. scripts/ci.sh runs this against BENCH_PR3.json when
// CI_NIGHTLY=1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	tol := flag.Float64("tol", 0, "relative tolerance per metric (0 = exact match)")
	timeTol := flag.Float64("time-tol", 0, "relative wall-time slowdown tolerance (0 = ignore timing)")
	history := flag.Bool("history", false, "throughput mode: derive msgs/sec from timing and gate one-sided regressions")
	tputTol := flag.Float64("tput-tol", 0.25, "with -history: allowed relative msgs/sec drop before failing")
	minWall := flag.Duration("min-wall", 100*time.Millisecond, "with -history: experiments faster than this in the old file are reported but not gated (scheduler noise dominates)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol F] [-time-tol F] [-history [-tput-tol F]] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldFile, err := obs.LoadBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newFile, err := obs.LoadBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	problems := obs.Compare(oldFile, newFile, obs.Tolerances{Metric: *tol, Time: *timeTol})
	if *history {
		problems = append(problems, compareThroughput(oldFile, newFile, *tputTol, *minWall)...)
	}
	if len(problems) == 0 {
		fmt.Printf("benchdiff: OK (%d experiments, tol=%g time-tol=%g)\n",
			len(newFile.Experiments), *tol, *timeTol)
		return
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", p)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) between %s and %s\n",
		len(problems), flag.Arg(0), flag.Arg(1))
	os.Exit(1)
}

// throughput derives an experiment's delivered msgs/sec from its metric
// snapshot and timing section. Experiments that deliver no substrate
// traffic (pure-analysis tables) or carry no timing report ok=false and
// are skipped by the gate.
func throughput(e obs.BenchExperiment) (float64, bool) {
	if e.Timing == nil || e.Timing.WallNS <= 0 || e.Metrics == nil {
		return 0, false
	}
	msgs, ok := e.Metrics.Counters["net.msg.delivered"]
	if !ok || msgs <= 0 {
		return 0, false
	}
	return float64(msgs) / (float64(e.Timing.WallNS) / 1e9), true
}

// compareThroughput is the -history gate: for every experiment with a
// derivable msgs/sec in both files, the new run must stay within tol of
// the old run's throughput in the slow direction. An experiment whose old
// record has throughput but whose new record lost its timing section is a
// regression too — the nightly stopped measuring. Experiments whose old
// wall time is under minWall are printed but never gated: at sub-100ms
// runtimes the ratio measures the host scheduler, not the code.
func compareThroughput(old, new *obs.BenchFile, tol float64, minWall time.Duration) []obs.Problem {
	newByID := map[string]obs.BenchExperiment{}
	for _, e := range new.Experiments {
		newByID[e.ID] = e
	}
	olds := append([]obs.BenchExperiment(nil), old.Experiments...)
	sort.Slice(olds, func(i, j int) bool { return olds[i].ID < olds[j].ID })
	var probs []obs.Problem
	compared := 0
	for _, oe := range olds {
		oldTput, ok := throughput(oe)
		if !ok {
			continue
		}
		ne, found := newByID[oe.ID]
		if !found {
			continue // Compare already reported the missing experiment
		}
		newTput, ok := throughput(ne)
		if !ok {
			probs = append(probs, obs.Problem{
				Experiment: oe.ID, Metric: "throughput.msgs_per_sec", Old: oldTput,
				Detail: "new file has no timing/traffic to derive msgs/sec from (run bench with -timing)",
			})
			continue
		}
		gated := oe.Timing.WallNS >= int64(minWall)
		note := ""
		if !gated {
			note = "  [under -min-wall, not gated]"
		} else {
			compared++
		}
		fmt.Printf("history %-24s msgs/sec old=%.0f new=%.0f (%+.1f%%)%s\n",
			oe.ID, oldTput, newTput, (newTput/oldTput-1)*100, note)
		if gated && newTput < oldTput*(1-tol) {
			probs = append(probs, obs.Problem{
				Experiment: oe.ID, Metric: "throughput.msgs_per_sec", Old: oldTput, New: newTput,
				Detail: fmt.Sprintf("msgs/sec dropped beyond -%.0f%%", tol*100),
			})
		}
	}
	if compared == 0 {
		probs = append(probs, obs.Problem{
			Metric: "throughput.msgs_per_sec",
			Detail: "no experiment pair had timing in both files; the history gate compared nothing",
		})
	}
	return probs
}
