// Command namectl drives the blockchain naming layer end to end on an
// in-process simulated miner network: key generation, preorder, register,
// resolve, update, transfer, and history — the §3.1 Namecoin/Blockstack
// workflow.
//
// Usage:
//
//	namectl demo [-seed N] [-name alice.id]   # full name lifecycle
//	namectl fees <name> [<name>...]           # fee schedule lookup
//	namectl zooko                             # triangle scores
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/experiments"
	"repro/internal/naming"
	"repro/internal/simnet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "demo":
		fs := flag.NewFlagSet("demo", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		name := fs.String("name", "alice.id", "name to register")
		_ = fs.Parse(os.Args[2:])
		if !naming.ValidName(*name) {
			fmt.Fprintf(os.Stderr, "invalid name %q\n", *name)
			os.Exit(2)
		}
		demo(*seed, *name)
	case "fees":
		cfg := naming.DefaultConfig()
		if len(os.Args) < 3 {
			fmt.Fprintln(os.Stderr, "usage: namectl fees <name> [<name>...]")
			os.Exit(2)
		}
		for _, n := range os.Args[2:] {
			if !naming.ValidName(n) {
				fmt.Printf("%-20s invalid name\n", n)
				continue
			}
			fmt.Printf("%-20s fee %d (base %d)\n", n, cfg.RequiredFee(n), cfg.BaseFee)
		}
	case "zooko":
		fmt.Print(experiments.ZookoTable())
	default:
		usage()
		os.Exit(2)
	}
}

func demo(seed int64, name string) {
	nw := simnet.New(seed)
	rng := rand.New(rand.NewSource(seed))
	alice, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		panic(err)
	}
	bob, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alice address: %s\nbob   address: %s\n\n", alice.Fingerprint().Short(), bob.Fingerprint().Short())

	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{alice.Fingerprint(): 10_000},
	}
	miners := make([]*chain.Miner, 3)
	ids := make([]simnet.NodeID, 3)
	for i := range miners {
		node := nw.AddNode()
		ids[i] = node.ID()
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), cryptoutil.SumHash([]byte{byte(i)}), float64(cfg.InitialDifficulty)/spacing.Seconds()/3)
	}
	for i, m := range miners {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
		m.Start()
	}

	nameCfg := naming.DefaultConfig()
	client := naming.NewClient(alice, nameCfg, rng, 0)
	step := func(what string, tx *chain.Tx) {
		miners[0].SubmitTx(tx)
		// Let several blocks pass so the op confirms.
		nw.Run(nw.Now() + 4*spacing)
		idx := naming.BuildIndex(miners[0].Chain(), nameCfg)
		rec, ok := idx.Resolve(name)
		status := "unresolved"
		if ok {
			status = fmt.Sprintf("owner=%s value=%q expires@%d", rec.Owner.Short(), rec.Value, rec.ExpiresAt)
		}
		fmt.Printf("%-28s height=%-4d %s\n", what, miners[0].Chain().Height(), status)
	}

	pre, err := client.Preorder(name)
	if err != nil {
		panic(err)
	}
	step("preorder (salted commit)", pre)
	step("register (reveal)", client.Register(name, []byte("zonefile-v1")))
	step("update zone", client.Update(name, []byte("zonefile-v2")))
	step("transfer to bob", client.Transfer(name, bob.Fingerprint()))

	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	idx := naming.BuildIndex(miners[0].Chain(), nameCfg)
	if rec, ok := idx.Resolve(name); ok {
		fmt.Printf("\nhistory of %q:\n", name)
		for _, ev := range rec.History {
			fmt.Printf("  height %-4d %-9s owner=%s value=%q\n", ev.Height, ev.Op, ev.Owner.Short(), ev.Value)
		}
	}
	// Bonus: launch a custom namespace and register inside it.
	fmt.Printf("\nnamespace lifecycle (.demo, base fee 2, lifetime 200 blocks):\n")
	for _, m := range miners {
		m.Start()
	}
	client.SetNonce(miners[0].Chain().State().Nonce(alice.Fingerprint()))
	nsPre, err := client.NamespacePreorder("demo")
	if err != nil {
		panic(err)
	}
	miners[0].SubmitTx(nsPre)
	nw.Run(nw.Now() + 3*spacing)
	miners[0].SubmitTx(client.NamespaceReveal("demo", 2, 200))
	nw.Run(nw.Now() + 3*spacing)
	miners[0].SubmitTx(client.NamespaceReady("demo"))
	nw.Run(nw.Now() + 3*spacing)
	pre2, err := client.Preorder("bob.demo")
	if err != nil {
		panic(err)
	}
	miners[0].SubmitTx(pre2)
	nw.Run(nw.Now() + 3*spacing)
	miners[0].SubmitTx(client.RegisterWithFee("bob.demo", []byte("ns zone"), 2*32))
	nw.Run(nw.Now() + 4*spacing)
	idx2 := naming.BuildIndex(miners[0].Chain(), nameCfg)
	if ns, ok := idx2.Namespace("demo"); ok {
		fmt.Printf("  namespace %q ready=%v baseFee=%d period=%d\n", ns.ID, ns.Ready, ns.BaseFee, ns.RegistrationPeriod)
	}
	if rec, ok := idx2.Resolve("bob.demo"); ok {
		fmt.Printf("  bob.demo → owner=%s expires@%d (namespace lifetime)\n", rec.Owner.Short(), rec.ExpiresAt)
	}
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	c := miners[0].Chain()
	fmt.Printf("\nchain: height=%d blocks=%d ledger=%d bytes (endless-ledger growth) work=%v hashes\n",
		c.Height(), c.NumBlocks(), c.TotalBytes(), c.WorkExpended())
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: namectl demo [-seed N] [-name NAME] | fees <name>... | zooko`)
}
