// Command storesim runs the decentralized-storage simulations of §3.3
// with tunable parameters: durability under permanent provider failures
// (experiment X5), the proof-vs-attack matrix (X6), and the Table 2
// incentive demos.
//
// Usage:
//
//	storesim durability [-seed N] [-objects 20] [-providers 30] [-hours 6] [-die 0.5]
//	storesim proofs [-seed N]
//	storesim incentives [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "durability":
		fs := flag.NewFlagSet("durability", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		objects := fs.Int("objects", 20, "objects stored")
		providers := fs.Int("providers", 30, "provider fleet size")
		hours := fs.Int("hours", 6, "simulated horizon in hours")
		die := fs.Float64("die", 0.5, "fraction of providers that die permanently")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.StorageDurability(*seed, *objects, *providers, time.Duration(*hours)*time.Hour, *die))
	case "proofs":
		fs := flag.NewFlagSet("proofs", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.StorageAttacks(*seed))
	case "incentives":
		fs := flag.NewFlagSet("incentives", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.RunIncentiveDemos(*seed))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: storesim durability|proofs|incentives [flags]`)
}
