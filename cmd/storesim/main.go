// Command storesim runs the decentralized-storage simulations of §3.3
// with tunable parameters: durability under permanent provider failures
// (experiment X5), the proof-vs-attack matrix (X6), and the Table 2
// incentive demos.
//
// Usage:
//
//	storesim durability [-seed N] [-objects 20] [-providers 30] [-hours 6] [-die 0.5]
//	storesim proofs [-seed N]
//	storesim incentives [-seed N]
//	storesim dedup [-seed N] [-users 16] [-providers 6] [-cdc] [-avg-chunk 1024] [-stats]
//
// The dedup subcommand runs the X17 overlapping-upload populations
// (shared-prefix and edited-document) against providers running the
// tiered localstore. -cdc switches the uploads from fixed-size chunking
// to content-defined chunking at the -avg-chunk target size; -stats
// appends per-provider disk/memory tier occupancy after the GC phase.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "durability":
		fs := flag.NewFlagSet("durability", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		objects := fs.Int("objects", 20, "objects stored")
		providers := fs.Int("providers", 30, "provider fleet size")
		hours := fs.Int("hours", 6, "simulated horizon in hours")
		die := fs.Float64("die", 0.5, "fraction of providers that die permanently")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.StorageDurability(*seed, *objects, *providers, time.Duration(*hours)*time.Hour, *die))
	case "proofs":
		fs := flag.NewFlagSet("proofs", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.StorageAttacks(*seed))
	case "incentives":
		fs := flag.NewFlagSet("incentives", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.RunIncentiveDemos(*seed))
	case "dedup":
		fs := flag.NewFlagSet("dedup", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "simulation seed")
		users := fs.Int("users", 0, "uploaders sharing overlapping documents (0 = X17 default)")
		providers := fs.Int("providers", 0, "provider fleet size (0 = X17 default)")
		cdc := fs.Bool("cdc", false, "use content-defined chunking instead of fixed-size")
		avgChunk := fs.Int("avg-chunk", 0, "target average chunk size in bytes, power of two (0 = X17 default)")
		stats := fs.Bool("stats", false, "append per-provider tier occupancy")
		_ = fs.Parse(os.Args[2:])
		fmt.Print(experiments.DedupSim(*seed, *users, *providers, *cdc, *avgChunk, *stats))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: storesim durability|proofs|incentives|dedup [flags]`)
}
