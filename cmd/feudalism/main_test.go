package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files instead of diffing against them")

// TestTableGoldens pins the byte-exact output of the three paper-table
// commands to testdata/*.golden. The tables are deterministic (no seed, no
// simulation), so any diff is a real change to a published artifact —
// regenerate deliberately with `go test ./cmd/feudalism -update`.
func TestTableGoldens(t *testing.T) {
	for _, cmd := range []string{"table1", "table2", "table3"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			out, ok := renderTable(cmd)
			if !ok || out == "" {
				t.Fatalf("renderTable(%q) produced nothing", cmd)
			}
			golden := filepath.Join("testdata", cmd+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if out != string(want) {
				t.Errorf("%s output drifted from %s.\ngot:\n%s\nwant:\n%s\n(run `go test ./cmd/feudalism -update` if the change is intended)",
					cmd, golden, out, want)
			}
		})
	}
}

// TestRenderTableUnknown: non-table commands are not rendered here.
func TestRenderTableUnknown(t *testing.T) {
	if _, ok := renderTable("zooko"); ok {
		t.Error("renderTable accepted a non-table command")
	}
}
