// Command feudalism is the umbrella CLI for the reproduction of "The
// Barriers to Overthrowing Internet Feudalism" (HotNets-XVI, 2017). It
// regenerates the paper's three tables and runs the quantitative
// experiments (X1–X18, plus sensitivity sweeps) described in EXPERIMENTS.md.
//
// Usage:
//
//	feudalism table1|table2|table3|zooko          # paper tables + naming triangle
//	feudalism experiment <id> [-seed N] [-trials T] [-workers W]
//	                [-workload zipf|diurnal|flash]  # X18 schedule shape
//	feudalism all [-seed N]                       # everything, in order
//	feudalism list                                # available experiment ids
//	feudalism bench [-json out.json] [-seed N] [-trials T] [-workers W]
//	                [-scale full|tiny] [-timing]  # machine-readable bench
//
// With -trials T > 1 the stochastic experiments run T independent seeds in
// parallel (simnet.Trials) and report mean [p50 p95] per cell instead of a
// single draw; deterministic experiments ignore the flag.
//
// `bench` runs every registered experiment at fixed seeds and emits the
// BENCH_*.json format (see EXPERIMENTS.md): per experiment, the merged
// observability snapshot — protocol counters like dht.lookup.hops,
// substrate traffic, span histograms — plus wall time and allocations when
// -timing is set. Without -timing the bytes are deterministic: identical
// across repeated runs and across -workers counts. cmd/benchdiff compares
// two such files; scripts/ci.sh uses the pair as the merge gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/feasibility"
	"repro/internal/simnet"
)

// renderTable produces the exact stdout of the three paper-table commands;
// the golden tests pin this output byte for byte.
func renderTable(cmd string) (string, bool) {
	switch cmd {
	case "table1":
		return experiments.Table1().String(), true
	case "table2":
		return experiments.Table2().String(), true
	case "table3":
		return experiments.Table3().String() +
			fmt.Sprintf("\nBreak-even redundancy before the storage conclusion flips: %.2fx\n",
				feasibility.BreakEvenRedundancy(feasibility.PaperCloud(), feasibility.PaperDevices())), true
	}
	return "", false
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "bench" {
		runBenchCmd(os.Args[2:])
		return
	}
	if cmd == "scale" {
		runScaleCmd(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 42, "simulation seed (runs are deterministic per seed)")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "table1", "table2", "table3":
		out, _ := renderTable(cmd)
		fmt.Print(out)
	case "zooko":
		fmt.Print(experiments.ZookoTable())
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Desc)
		}
	case "experiment":
		if fs.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "experiment id required; see `feudalism list`")
			os.Exit(2)
		}
		// Flags may follow the experiment id; parse the remainder too.
		id := fs.Arg(0)
		rest := flag.NewFlagSet("experiment "+id, flag.ExitOnError)
		seed2 := rest.Int64("seed", *seed, "simulation seed")
		trials := rest.Int("trials", 1, "number of independent seeds to aggregate over")
		workers := rest.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		timing := rest.Bool("timing", false, "show wall time and allocations where the experiment supports it (X15)")
		wl := rest.String("workload", "flash", "X18 schedule shape: zipf (steady popularity), diurnal (day/night cycle), or flash (crowd spike)")
		_ = rest.Parse(fs.Args()[1:])
		if *timing {
			experiments.SetWallClock(func() int64 { return time.Now().UnixNano() })
		}
		e, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; see `feudalism list`\n", id)
			os.Exit(2)
		}
		if id == "x18" && *trials <= 1 {
			valid := false
			for _, v := range experiments.WorkloadVariants() {
				if v == *wl {
					valid = true
				}
			}
			if !valid {
				fmt.Fprintf(os.Stderr, "unknown workload %q; want one of %v\n", *wl, experiments.WorkloadVariants())
				os.Exit(2)
			}
			fmt.Print(experiments.WorkloadContention(*seed2, *wl))
			return
		}
		if *trials > 1 && e.Multi != nil {
			fmt.Print(e.Multi(simnet.Seeds(*seed2, *trials), *workers))
		} else {
			fmt.Print(e.Run(*seed2))
		}
	case "all":
		fmt.Print(experiments.Table1())
		fmt.Println()
		fmt.Print(experiments.Table2())
		fmt.Println()
		fmt.Print(experiments.Table3())
		fmt.Println()
		fmt.Print(experiments.ZookoTable())
		for _, e := range experiments.Registry() {
			fmt.Println()
			fmt.Print(e.Run(*seed))
		}
	default:
		usage()
		os.Exit(2)
	}
}

// runBenchCmd implements `feudalism bench`. It has its own flag set (the
// generic -seed parser would reject -scale etc.), so it is dispatched
// before the main switch.
func runBenchCmd(args []string) {
	bfs := flag.NewFlagSet("bench", flag.ExitOnError)
	bseed := bfs.Int64("seed", 42, "base simulation seed")
	btrials := bfs.Int("trials", 1, "independent seeds for experiments with a Multi variant")
	bworkers := bfs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS); output is identical at any count")
	bscale := bfs.String("scale", "full", "experiment sizes: full or tiny")
	btiming := bfs.Bool("timing", false, "record wall time and allocations (machine-dependent; breaks byte-reproducibility)")
	bout := bfs.String("json", "", "write JSON to this file instead of stdout")
	_ = bfs.Parse(args)
	if *bscale != "full" && *bscale != "tiny" {
		fmt.Fprintf(os.Stderr, "bench: -scale must be full or tiny, got %q\n", *bscale)
		os.Exit(2)
	}
	opts := experiments.BenchOptions{Seed: *bseed, Trials: *btrials, Workers: *bworkers, Scale: *bscale}
	if *btiming {
		opts.WallClock = func() int64 { return time.Now().UnixNano() }
	}
	b, err := experiments.RunBench(opts).EncodeJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *bout == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*bout, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// runScaleCmd implements `feudalism scale`: the huge-tier (100k–1M node)
// X15 sweep on the sharded engine. Each cell runs at every requested
// worker count on the same seed; the runs must produce byte-identical
// metric snapshots (the command fails otherwise), and the emitted bench
// JSON records wall time and msgs/sec per worker count so CI can track the
// throughput trajectory and the parallel speedup.
func runScaleCmd(args []string) {
	sfs := flag.NewFlagSet("scale", flag.ExitOnError)
	sseed := sfs.Int64("seed", 42, "base simulation seed")
	stiers := sfs.String("n", "100000", "comma-separated node populations (e.g. 100000,1000000)")
	ssubs := sfs.String("subsystems", "simnet,dht,gossip", "comma-separated subsystems to sweep")
	sshards := sfs.Int("shards", experiments.HugeShards, "shard count for the sharded engine")
	sworkers := sfs.String("workers", "", "comma-separated worker counts (default \"1,<GOMAXPROCS>\")")
	sout := sfs.String("json", "", "write the bench JSON artifact to this file")
	sspeed := sfs.Float64("check-speedup", 0, "fail unless the max/min-worker msgs/sec ratio reaches this (0 disables)")
	smincpu := sfs.Int("min-cpus", 4, "enforce -check-speedup only on hosts with at least this many CPUs")
	_ = sfs.Parse(args)

	opts := experiments.HugeOptions{
		Seed:      *sseed,
		Tiers:     parseIntList(*stiers, "n"),
		Shards:    *sshards,
		WallClock: func() int64 { return time.Now().UnixNano() },
	}
	if subs := strings.Split(*ssubs, ","); *ssubs != "" {
		opts.Subsystems = subs
	}
	if *sworkers != "" {
		opts.Workers = parseIntList(*sworkers, "workers")
	}
	cells, file, err := experiments.RunScaleHuge(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
	for _, c := range cells {
		fmt.Printf("%-28s shards=%-3d workers=%-3d conv=%.1f%% msgs=%d wall=%.2fs msgs/sec=%.0f\n",
			c.ID(), c.Shards, c.Workers, c.Cell.Converged*100, c.Cell.Messages,
			float64(c.Timing.WallNS)/1e9, c.MsgsPerSec)
	}
	for _, sub := range opts.Subsystems {
		for _, n := range opts.Tiers {
			if sp, ok := experiments.HugeSpeedup(cells, sub, n); ok {
				fmt.Printf("%-28s speedup=%.2fx (byte-identical across worker counts)\n",
					fmt.Sprintf("x15.huge.%s.n%d", sub, n), sp)
				if *sspeed > 0 && runtime.NumCPU() >= *smincpu && sp < *sspeed {
					fmt.Fprintf(os.Stderr, "scale: %s.n%d speedup %.2fx below required %.2fx\n", sub, n, sp, *sspeed)
					os.Exit(1)
				}
			}
		}
	}
	if *sout != "" {
		b, err := file.EncodeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*sout, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scale: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseIntList(s, flagName string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "scale: -%s wants positive comma-separated integers, got %q\n", flagName, s)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: feudalism <command> [-seed N]

commands:
  table1      regenerate the paper's Table 1 (problems × projects)
  table2      regenerate the paper's Table 2 (storage systems)
  table3      regenerate the paper's Table 3 (cloud vs device capacity)
  zooko       Zooko-triangle scores for all implemented naming schemes
  experiment  run one experiment by id (see list); x18 takes
              -workload zipf|diurnal|flash to pick the schedule shape
  all         tables + every experiment
  list        list experiment ids
  bench       run every experiment and emit machine-readable BENCH JSON
  scale       run the huge-tier (100k-1M node) X15 sweep on the sharded
              engine; -n 100000,1000000 -workers 1,8 -json out.json`)
}
