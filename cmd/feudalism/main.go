// Command feudalism is the umbrella CLI for the reproduction of "The
// Barriers to Overthrowing Internet Feudalism" (HotNets-XVI, 2017). It
// regenerates the paper's three tables and runs the quantitative
// experiments (X1–X13, plus sensitivity sweeps) described in EXPERIMENTS.md.
//
// Usage:
//
//	feudalism table1|table2|table3|zooko          # paper tables + naming triangle
//	feudalism experiment <id> [-seed N] [-trials T] [-workers W]
//	feudalism all [-seed N]                       # everything, in order
//	feudalism list                                # available experiment ids
//
// With -trials T > 1 the stochastic experiments run T independent seeds in
// parallel (simnet.Trials) and report mean [p50 p95] per cell instead of a
// single draw; deterministic experiments ignore the flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/feasibility"
	"repro/internal/simnet"
)

var experimentIDs = []struct {
	id, desc string
	run      func(seed int64) fmt.Stringer
	// multi, when non-nil, is the multi-seed aggregated variant used for
	// -trials > 1. Deterministic experiments leave it nil.
	multi func(seeds []int64, workers int) fmt.Stringer
}{
	{"naming-throughput", "X1: registration latency/throughput, centralized vs blockchain", func(seed int64) fmt.Stringer {
		return experiments.NamingSchemes(seed, 20)
	}, nil},
	{"fifty-one", "X2: private-branch (51%) attack success vs hashrate share", func(seed int64) fmt.Stringer {
		return experiments.FiftyOnePercent(seed, 20, 18)
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.FiftyOnePercentMulti(seeds, workers, 20, 18)
	}},
	{"comm-availability", "X3: message deliverability vs failed servers, four models", func(seed int64) fmt.Stringer {
		return experiments.CommAvailability(seed, 10, []float64{0, 0.1, 0.2, 0.3, 0.5})
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.CommAvailabilityMulti(seeds, workers, 10, []float64{0, 0.1, 0.2, 0.3, 0.5})
	}},
	{"social-p2p", "X4: social-P2P delivery vs friend degree and uptime", func(seed int64) fmt.Stringer {
		return experiments.SocialP2P(seed, 30, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95})
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.SocialP2PMulti(seeds, workers, 30, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95})
	}},
	{"metadata", "X4b: per-message metadata exposure by model", func(seed int64) fmt.Stringer {
		return experiments.MetadataExposureTable(10)
	}, nil},
	{"storage-durability", "X5: object survival under permanent provider failures", func(seed int64) fmt.Stringer {
		return experiments.StorageDurability(seed, 20, 30, 6*time.Hour, 0.5)
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.StorageDurabilityMulti(seeds, workers, 20, 30, 6*time.Hour, 0.5)
	}},
	{"storage-attacks", "X6: proof mechanisms vs provider attacks", func(seed int64) fmt.Stringer {
		return experiments.StorageAttacks(seed)
	}, nil},
	{"incentives", "E2 demo: every Table 2 incentive scheme executed", func(seed int64) fmt.Stringer {
		return experiments.RunIncentiveDemos(seed)
	}, nil},
	{"hostless-web", "X7: website availability, client-server vs hostless", func(seed int64) fmt.Stringer {
		return experiments.HostlessWeb(seed, 40)
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.HostlessWebMulti(seeds, workers, 40)
	}},
	{"usenet-load", "X8: per-server cost growth, Usenet flood vs federated-home", func(seed int64) fmt.Stringer {
		return experiments.UsenetLoad(seed, []int{5, 10, 20, 40}, 20, 512)
	}, nil},
	{"abuse", "X9: spam exposure vs moderation coverage, three models", func(seed int64) fmt.Stringer {
		return experiments.AbuseContainment(seed, 20, []float64{0, 0.25, 0.5, 0.75, 1})
	}, nil},
	{"selfish-mining", "X10: revenue share, honest vs selfish withholding strategy", func(seed int64) fmt.Stringer {
		return experiments.SelfishMining(seed, 12, 150)
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.SelfishMiningMulti(seeds, workers, 12, 150)
	}},
	{"dht-quality", "X11: DHT lookups on device-grade vs datacenter infrastructure", func(seed int64) fmt.Stringer {
		return experiments.DHTQuality(seed, 40, 40)
	}, func(seeds []int64, workers int) fmt.Stringer {
		return experiments.DHTQualityMulti(seeds, workers, 40, 40)
	}},
	{"wot-sybil", "X12: web-of-trust Sybil amplification vs ring size", func(seed int64) fmt.Stringer {
		return experiments.WoTSybil(seed, 12, []int{10, 50, 200, 1000})
	}, nil},
	{"ledger-growth", "X13: endless-ledger growth vs SPV and compaction", func(seed int64) fmt.Stringer {
		return experiments.LedgerGrowth(seed, 6, 20)
	}, nil},
	{"sensitivity", "E3 sensitivity: perturbing the §4 feasibility constants", func(seed int64) fmt.Stringer {
		return experiments.FeasibilitySensitivity()
	}, nil},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 42, "simulation seed (runs are deterministic per seed)")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "table1":
		fmt.Print(experiments.Table1())
	case "table2":
		fmt.Print(experiments.Table2())
	case "table3":
		fmt.Print(experiments.Table3())
		fmt.Printf("\nBreak-even redundancy before the storage conclusion flips: %.2fx\n",
			feasibility.BreakEvenRedundancy(feasibility.PaperCloud(), feasibility.PaperDevices()))
	case "zooko":
		fmt.Print(experiments.ZookoTable())
	case "list":
		for _, e := range experimentIDs {
			fmt.Printf("  %-20s %s\n", e.id, e.desc)
		}
	case "experiment":
		if fs.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "experiment id required; see `feudalism list`")
			os.Exit(2)
		}
		// Flags may follow the experiment id; parse the remainder too.
		id := fs.Arg(0)
		rest := flag.NewFlagSet("experiment "+id, flag.ExitOnError)
		seed2 := rest.Int64("seed", *seed, "simulation seed")
		trials := rest.Int("trials", 1, "number of independent seeds to aggregate over")
		workers := rest.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		_ = rest.Parse(fs.Args()[1:])
		for _, e := range experimentIDs {
			if e.id == id {
				if *trials > 1 && e.multi != nil {
					fmt.Print(e.multi(simnet.Seeds(*seed2, *trials), *workers))
				} else {
					fmt.Print(e.run(*seed2))
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown experiment %q; see `feudalism list`\n", id)
		os.Exit(2)
	case "all":
		fmt.Print(experiments.Table1())
		fmt.Println()
		fmt.Print(experiments.Table2())
		fmt.Println()
		fmt.Print(experiments.Table3())
		fmt.Println()
		fmt.Print(experiments.ZookoTable())
		for _, e := range experimentIDs {
			fmt.Println()
			fmt.Print(e.run(*seed))
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: feudalism <command> [-seed N]

commands:
  table1      regenerate the paper's Table 1 (problems × projects)
  table2      regenerate the paper's Table 2 (storage systems)
  table3      regenerate the paper's Table 3 (cloud vs device capacity)
  zooko       Zooko-triangle scores for all implemented naming schemes
  experiment  run one experiment by id (see list)
  all         tables + every experiment
  list        list experiment ids`)
}
