// Package repro is a repo-scale reproduction of "The Barriers to
// Overthrowing Internet Feudalism" (Liu, Tariq, Chen, Raghavan;
// HotNets-XVI, 2017): a stdlib-only Go implementation of every system
// class the paper surveys — blockchain naming, four group-communication
// deployment models, incentivized decentralized storage, and the hostless
// web — over a deterministic discrete-event network simulator, together
// with harnesses that regenerate the paper's three tables and quantify its
// qualitative claims.
//
// The root package holds the cross-subsystem integration tests, the scale
// smoke tests, and the benchmark harness (one benchmark per paper table
// and experiment; see EXPERIMENTS.md). The implementation lives under
// internal/ — see DESIGN.md for the system inventory — and runnable
// entry points under cmd/ and examples/.
package repro
