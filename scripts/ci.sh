#!/bin/sh
# ci.sh — the merge gate, plus the nightly tier when asked. The default
# run is the merge gate: the full `make ci` pipeline (fmt, build, vet,
# determinism lint, race, tests, coverage floor, fuzz burst), then the
# seeded bench regression gate: a fresh deterministic `feudalism bench`
# run must match the checked-in BENCH_baseline.json exactly (tolerance 0 —
# the simulation is seed-deterministic, so any metric drift is a real
# behaviour change that requires regenerating the baseline on purpose),
# and the committed BENCH_baseline.json / BENCH_PR3.json pair must agree.
# .github/workflows/ci.yml runs exactly this script; run it locally before
# pushing to see what CI will see.
#
# CI_SCALE=1 adds the 10k-node tier (make scale). CI_NIGHTLY=1 adds the
# throughput history gate (a -timing bench diffed against BENCH_PR3.json
# with benchdiff -history: msgs/sec regressions beyond 25% fail) and the
# 100k-node sharded tier; nightly artifacts (the timing bench JSON and the
# huge-tier scale JSON) land in $CI_ARTIFACTS (default ./ci-artifacts) so
# the workflow can upload them.
set -eu
cd "$(dirname "$0")/.."

make ci

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/feudalism" ./cmd/feudalism
go build -o "$tmp/benchdiff" ./cmd/benchdiff

# benchdiff treats experiments present only in the fresh run as additions,
# not regressions — so a baseline predating X18 would silently skip gating
# the workload engine. Require the entry before trusting the diff.
grep -q '"id": "x18"' BENCH_baseline.json || {
	echo "bench gate: BENCH_baseline.json has no x18 entry; regenerate the baseline" >&2
	exit 1
}
grep -q '"id": "x19"' BENCH_baseline.json || {
	echo "bench gate: BENCH_baseline.json has no x19 entry; regenerate the baseline" >&2
	exit 1
}
grep -q '"id": "x20"' BENCH_baseline.json || {
	echo "bench gate: BENCH_baseline.json has no x20 entry; regenerate the baseline" >&2
	exit 1
}

echo "bench gate: running deterministic bench (seed 42, full scale)"
"$tmp/feudalism" bench -scale full -seed 42 -trials 1 -json "$tmp/bench.json"
"$tmp/benchdiff" BENCH_baseline.json "$tmp/bench.json"
"$tmp/benchdiff" BENCH_baseline.json BENCH_PR3.json

# The 10k-node tier (make scale) is nightly-style work: run it only when
# asked, so the merge gate stays fast.
if [ "${CI_SCALE:-0}" = "1" ]; then
	echo "scale gate: big tier + race on the small tier"
	make scale
fi

# The nightly adds what the merge gate cannot afford: wall-time-aware
# benches and the 100k-node sharded tier. Timing is machine-dependent, so
# the history gate is one-sided (only slowdowns fail) with a 25% tolerance
# and a wall-time floor that keeps sub-100ms experiments out of the gate.
if [ "${CI_NIGHTLY:-0}" = "1" ]; then
	art="${CI_ARTIFACTS:-ci-artifacts}"
	mkdir -p "$art"

	echo "nightly gate: timing bench vs BENCH_PR3.json (benchdiff -history)"
	"$tmp/feudalism" bench -scale full -seed 42 -trials 1 -timing -json "$art/bench-timing.json"
	"$tmp/benchdiff" -history BENCH_PR3.json "$art/bench-timing.json"

	echo "nightly gate: 100k-node sharded tier (SCALE=huge)"
	SCALE=huge go test -run TestScaleHuge -count=1 -timeout 1800s -v .

	# The huge sweep re-runs every cell at 1 worker and GOMAXPROCS workers,
	# fails unless the snapshots are byte-identical, and (on real multi-core
	# runners) requires the parallel engine to actually pay for itself.
	echo "nightly gate: huge-tier sweep with worker-count byte-identity + speedup"
	"$tmp/feudalism" scale -n "${CI_HUGE_TIERS:-100000,1000000}" \
		-check-speedup 1.5 -json "$art/scale-huge.json"

	echo "nightly artifacts in $art:"
	ls -l "$art"
fi

echo "ci.sh: all gates passed"
