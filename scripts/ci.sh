#!/bin/sh
# ci.sh — the merge gate. Runs the full `make ci` pipeline (fmt, build,
# vet, determinism lint, race, tests, coverage floor, fuzz burst), then the
# seeded bench regression gate: a fresh deterministic `feudalism bench`
# run must match the checked-in BENCH_baseline.json exactly (tolerance 0 —
# the simulation is seed-deterministic, so any metric drift is a real
# behaviour change that requires regenerating the baseline on purpose),
# and the committed BENCH_baseline.json / BENCH_PR3.json pair must agree.
# .github/workflows/ci.yml runs exactly this script; run it locally before
# pushing to see what CI will see.
set -eu
cd "$(dirname "$0")/.."

make ci

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/feudalism" ./cmd/feudalism
go build -o "$tmp/benchdiff" ./cmd/benchdiff

# benchdiff treats experiments present only in the fresh run as additions,
# not regressions — so a baseline predating X18 would silently skip gating
# the workload engine. Require the entry before trusting the diff.
grep -q '"id": "x18"' BENCH_baseline.json || {
	echo "bench gate: BENCH_baseline.json has no x18 entry; regenerate the baseline" >&2
	exit 1
}

echo "bench gate: running deterministic bench (seed 42, full scale)"
"$tmp/feudalism" bench -scale full -seed 42 -trials 1 -json "$tmp/bench.json"
"$tmp/benchdiff" BENCH_baseline.json "$tmp/bench.json"
"$tmp/benchdiff" BENCH_baseline.json BENCH_PR3.json

# The 10k-node tier (make scale) is nightly-style work: run it only when
# asked, so the merge gate stays fast.
if [ "${CI_SCALE:-0}" = "1" ]; then
	echo "scale gate: big tier + race on the small tier"
	make scale
fi

echo "ci.sh: all gates passed"
