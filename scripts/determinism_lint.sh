#!/bin/sh
# determinism_lint.sh — fail if non-test code under internal/ (outside
# internal/simnet, which owns all time and randomness) reads the wall clock
# or draws from the global math/rand source. Either would make simulation
# results depend on the host instead of the seed; anything that needs time
# must use virtual time (Network.Now) and anything that needs randomness
# must use the per-node RNG streams. Wall-clock timing for benches is
# injected from cmd/ (see experiments.BenchOptions.WallClock).
set -eu
cd "$(dirname "$0")/.."

bad=0
for f in $(find internal -name '*.go' ! -name '*_test.go' ! -path 'internal/simnet/*' | sort); do
    if grep -nE 'time\.Now\(' "$f"; then
        echo "determinism lint: $f reads the wall clock (use virtual time or injected clocks)" >&2
        bad=1
    fi
    if grep -nE '\brand\.(Intn|Int63n?|Int31n?|Int|Float64|Float32|Perm|Shuffle|Seed|Uint32|Uint64|NormFloat64|ExpFloat64|Read|N)\(' "$f"; then
        echo "determinism lint: $f uses the global math/rand source (use the per-node RNG streams)" >&2
        bad=1
    fi
done

# The workload engine must stay inside the sweep: every generator draw has
# to come off the seeded streams, or X18 schedules stop replaying.
if ! find internal/workload -name '*.go' ! -name '*_test.go' | grep -q .; then
    echo "determinism lint: internal/workload sources missing from the sweep" >&2
    exit 1
fi

if [ "$bad" -ne 0 ]; then
    echo "determinism lint: FAILED" >&2
    exit 1
fi
echo "determinism lint: OK"
