#!/bin/sh
# determinism_lint.sh — fail if non-test code under internal/ (outside
# internal/simnet, which owns all time and randomness) reads the wall clock
# or draws from the global math/rand source. Either would make simulation
# results depend on the host instead of the seed; anything that needs time
# must use virtual time (Network.Now) and anything that needs randomness
# must use the per-node RNG streams. Wall-clock timing for benches is
# injected from cmd/ (see experiments.BenchOptions.WallClock).
set -eu
cd "$(dirname "$0")/.."

bad=0
for f in $(find internal -name '*.go' ! -name '*_test.go' ! -path 'internal/simnet/*' | sort); do
    if grep -nE 'time\.Now\(' "$f"; then
        echo "determinism lint: $f reads the wall clock (use virtual time or injected clocks)" >&2
        bad=1
    fi
    if grep -nE '\brand\.(Intn|Int63n?|Int31n?|Int|Float64|Float32|Perm|Shuffle|Seed|Uint32|Uint64|NormFloat64|ExpFloat64|Read|N)\(' "$f"; then
        echo "determinism lint: $f uses the global math/rand source (use the per-node RNG streams)" >&2
        bad=1
    fi
done

# --- sharded-engine rules -------------------------------------------------
# internal/simnet owns event ordering, and the sharded engine runs it on
# several goroutines at once, so two extra hazards apply inside the package
# itself:
#
# 1) sync/atomic is banned in the engine. An atomic counter is exactly the
#    shape of bug the shard design forbids: it makes a value depend on which
#    worker got there first, which the byte-identity tests cannot always
#    catch. All cross-shard accumulation must happen at window barriers
#    (outbox drain, Trace.add, Histogram.Merge). trials.go is the one
#    allowlisted file — it parallelises whole independent simulations and
#    only uses an atomic to hand out trial indices, never inside a network.
for f in $(find internal/simnet -name '*.go' ! -name '*_test.go' ! -name 'trials.go' | sort); do
    if grep -nE '"sync/atomic"|\batomic\.[A-Z]' "$f"; then
        echo "determinism lint: $f uses sync/atomic inside the simulation engine (accumulate at window barriers instead)" >&2
        bad=1
    fi
done

# 2) Map iteration is banned in the engine unless the line carries a
#    //determinism:ok marker explaining why order cannot leak (result sorted,
#    merge commutative, validation only). Go randomises map order per run,
#    so an unmarked range over a map in a path feeding event ordering or
#    exported snapshots silently breaks seed determinism. The check extracts
#    every identifier declared as a map (field, param, or := literal/make),
#    then flags `range` statements over any of those names. Names are scoped
#    per file plus the struct fields of the package's two engine files, so a
#    slice that happens to share a name with a map in another file does not
#    false-positive.
simnet_files=$(find internal/simnet -maxdepth 1 -name '*.go' ! -name '*_test.go' | sort)
extract_mapnames() {
    (grep -hoE '[A-Za-z_][A-Za-z0-9_]*[[:space:]]+map\[' "$@" | awk '{print $1}';
     grep -hoE '[A-Za-z_][A-Za-z0-9_]*[[:space:]]*:?=[[:space:]]*(make\()?map\[' "$@" |
         sed -E 's/[[:space:]]*:?=.*//') | sort -u
}
# Struct fields of the engine types are visible across files (nw.latency,
# sh.latency), so those names are shared; locals declared with := stay
# scoped to their own file.
shared_mapnames=$(grep -hoE '[A-Za-z_][A-Za-z0-9_]*[[:space:]]+map\[' \
    internal/simnet/simnet.go internal/simnet/shard.go | awk '{print $1}' | sort -u)
for f in $simnet_files; do
    names=$( (extract_mapnames "$f"; echo "$shared_mapnames") | sort -u)
    for name in $names; do
        [ -n "$name" ] || continue
        if grep -nE "range ([A-Za-z0-9_.]+\.)?${name}($|[^A-Za-z0-9_(])" "$f" | grep -v 'determinism:ok'; then
            echo "determinism lint: $f iterates map '$name' without a //determinism:ok marker (map order is randomised per run)" >&2
            bad=1
        fi
    done
done

# The workload engine must stay inside the sweep: every generator draw has
# to come off the seeded streams, or X18 schedules stop replaying.
if ! find internal/workload -name '*.go' ! -name '*_test.go' | grep -q .; then
    echo "determinism lint: internal/workload sources missing from the sweep" >&2
    exit 1
fi

# The replication layer's whole contract is determinism — demand decay as
# a pure function of observation times, no randomness, sorted fan-out —
# so it must stay inside the sweep too, or X19 stops replaying.
if ! find internal/replic -name '*.go' ! -name '*_test.go' | grep -q .; then
    echo "determinism lint: internal/replic sources missing from the sweep" >&2
    exit 1
fi

# Server-side overload control draws no randomness at all: admission,
# AIMD, CoDel, and the shed-hint ladder are pure functions of virtual
# time and config — it must stay inside the sweep, or X20 stops
# replaying.
if ! find internal/overload -name '*.go' ! -name '*_test.go' | grep -q .; then
    echo "determinism lint: internal/overload sources missing from the sweep" >&2
    exit 1
fi

if [ "$bad" -ne 0 ]; then
    echo "determinism lint: FAILED" >&2
    exit 1
fi
echo "determinism lint: OK"
