// Storagemarket: the §3.3 scenario — a decentralized storage marketplace
// in the Sia/Storj/Filecoin mould. Providers post asks; a client picks the
// cheapest, anchors contracts on the blockchain, uploads with erasure
// coding, audits every epoch with proof-of-storage challenges, pays only
// providers that prove possession, and catches a cheater who discarded the
// data ("nodes are therefore incentivized to contribute storage … and to
// cooperate").
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/storage"
)

func main() {
	nw := simnet.New(21)
	rng := rand.New(rand.NewSource(21))
	clientKey, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}

	// One-miner chain is enough for a market demo ledger.
	spacing := 10 * time.Second
	ccfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{clientKey.Fingerprint(): 1_000},
	}
	miner := chain.NewMiner(nw.AddNode(), chain.NewChain(ccfg), cryptoutil.SumHash([]byte("miner")),
		float64(ccfg.InitialDifficulty)/spacing.Seconds())
	miner.Start()

	fmt.Println("== 1. providers post asks (price per epoch, free space)")
	type seller struct {
		p      *storage.Provider
		addr   chain.Address
		honest bool
	}
	sellers := make([]seller, 6)
	var asks []storage.Ask
	for i := range sellers {
		cheat := storage.Honest
		honest := true
		if i == 2 { // one provider will take the money and drop the data
			cheat = storage.DropAfterAck
			honest = false
		}
		p := storage.NewProvider(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()), 1<<30, cheat)
		price := uint64(2 + rng.Intn(5))
		p.SetPrice(price)
		addr := cryptoutil.SumHash([]byte(fmt.Sprintf("seller-%d", i)))
		sellers[i] = seller{p: p, addr: addr, honest: honest}
		asks = append(asks, storage.Ask{Ref: p.Ref(), Address: addr, PricePerEpoch: price, FreeBytes: 1 << 30})
		fmt.Printf("   provider %d: price %d/epoch%s\n", i, price, map[bool]string{false: "   (secretly a cheater)", true: ""}[honest])
	}

	fmt.Println("\n== 2. client picks the 4 cheapest asks and uploads RS(2,4) shards")
	chosen := storage.SelectAsks(asks, 4096, 4)
	refs := make([]storage.ProviderRef, len(chosen))
	for i, a := range chosen {
		refs[i] = a.Ref
	}
	data := append([]byte("contracted data: "), bytes.Repeat([]byte("x"), 4000)...)
	// Providers sit on lossy home-broadband links, so the client rides the
	// adaptive transport: a dropped put is retried at the estimated RTO
	// instead of failing the whole placement.
	client := storage.NewClientWith(nw.AddNode(), 30*time.Second, resil.Defaults())
	var m *storage.Manifest
	var pl *storage.Placement
	client.UploadErasure(data, 2, 2, refs, func(mm *storage.Manifest, pp *storage.Placement, err error) {
		if err != nil {
			log.Fatal(err)
		}
		m, pl = mm, pp
	})
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   %d shards placed; redundancy %.1fx\n", len(m.Chunks), m.RedundancyFactor())

	fmt.Println("\n== 3. contracts anchored on chain, one per chosen provider")
	nonce := uint64(0)
	contracts := map[simnet.NodeID]*storage.Contract{}
	for _, a := range chosen {
		ct := &storage.Contract{
			Client:        clientKey.Fingerprint(),
			Provider:      a.Address,
			FileID:        m.FileID,
			SizeBytes:     int64(m.Size),
			PricePerEpoch: a.PricePerEpoch,
			Epochs:        3,
			ProofEvery:    6,
		}
		contracts[a.Ref.Node] = ct
		miner.SubmitTx(ct.AnchorTx(clientKey, nonce))
		nonce++
	}
	nw.Run(nw.Now() + 3*spacing)
	fmt.Printf("   %d contracts visible on chain\n", len(storage.ContractsOnChain(miner.Chain())))

	fmt.Println("\n== 4. three epochs: audit → pay only provers")
	paid := map[chain.Address]uint64{}
	for epoch := 1; epoch <= 3; epoch++ {
		var report *storage.AuditReport
		client.Audit(m, pl, 10*time.Second, func(r *storage.AuditReport) { report = r })
		nw.Run(nw.Now() + time.Minute)
		failedNodes := map[simnet.NodeID]bool{}
		for _, res := range report.Results {
			if !res.OK {
				failedNodes[res.Holder.Node] = true
			}
		}
		for node, ct := range contracts {
			if failedNodes[node] {
				fmt.Printf("   epoch %d: provider at node %d FAILED its proof → no payment\n", epoch, node)
				continue
			}
			miner.SubmitTx(ct.PaymentTx(clientKey, nonce))
			nonce++
			paid[ct.Provider] += ct.PricePerEpoch
		}
		nw.Run(nw.Now() + 3*spacing)
	}
	st := miner.Chain().State()
	for _, a := range chosen {
		fmt.Printf("   provider %s earned %d on-chain\n", a.Address.Short(), st.Balance(a.Address))
	}

	fmt.Println("\n== 5. the data is still recoverable (erasure tolerates the cheater)")
	var got []byte
	client.Download(m, pl, func(d []byte, err error) {
		if err != nil {
			log.Fatal(err)
		}
		got = d
	})
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   downloaded %d bytes, verified: %v\n", len(got), bytes.Equal(got, data))
	miner.Stop()
}
