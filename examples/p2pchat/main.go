// P2pchat: the freedom.js scenario of §3.4 — a serverless chat application
// whose "back-end" runs entirely in the participants' browsers (simulated
// nodes). The app uses the three freedom.js APIs: identity (names resolved
// through the blockchain naming layer), storage (a global DHT for the
// shared room roster), and transport (direct peer-to-peer messages). No
// server exists anywhere in the exchange.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/naming"
	"repro/internal/simnet"
	"repro/internal/webapp"
)

func main() {
	nw := simnet.New(77)
	rng := rand.New(rand.NewSource(77))

	fmt.Println("== 1. identities registered on the blockchain naming layer")
	alice, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}
	// A single local chain stands in for each client's synced replica.
	c := chain.NewChain(chain.Config{
		InitialDifficulty: 4,
		GenesisAlloc: map[chain.Address]uint64{
			alice.Fingerprint(): 1000,
			bob.Fingerprint():   1000,
		},
	})
	nameCfg := naming.DefaultConfig()
	mine := func(txs ...*chain.Tx) {
		ts := time.Duration(c.Head().Header.Time) + time.Second
		b, err := c.NewBlock(c.HeadHash(), txs, ts, chain.Address{1})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.AddBlock(b); err != nil {
			log.Fatal(err)
		}
	}
	aliceClient := naming.NewClient(alice, nameCfg, rng, 0)
	bobClient := naming.NewClient(bob, nameCfg, rng, 0)
	preA, _ := aliceClient.Preorder("alice.chat")
	preB, _ := bobClient.Preorder("bob.chat")
	mine(preA, preB)
	mine(aliceClient.Register("alice.chat", nil), bobClient.Register("bob.chat", nil))
	idx := naming.BuildIndex(c, nameCfg)
	resolver := func(name string) (cryptoutil.Hash, bool) { return idx.ResolveOwner(name) }
	fmt.Printf("   alice.chat → %s\n   bob.chat   → %s\n",
		must(resolver("alice.chat")).Short(), must(resolver("bob.chat")).Short())

	fmt.Println("\n== 2. app instances boot in two 'browsers' over a shared DHT")
	mkRuntime := func() *webapp.AppRuntime {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		return webapp.NewAppRuntime(node, dht.NewPeer(node, dht.Key{}, dht.Config{}), resolver)
	}
	appAlice := mkRuntime()
	appBob := mkRuntime()
	// Extra DHT-only participants so storage survives either browser closing.
	var extras []*webapp.AppRuntime
	for i := 0; i < 4; i++ {
		extras = append(extras, mkRuntime())
	}
	all := append([]*webapp.AppRuntime{appAlice, appBob}, extras...)
	for _, rt := range all[1:] {
		rt.DHT().Bootstrap(appAlice.DHT().Contact(), nil)
	}
	nw.Run(time.Minute)

	fmt.Println("\n== 3. rendezvous through the DHT, then direct transport")
	appAlice.Rendezvous("chat:alice.chat", nil)
	nw.Run(nw.Now() + time.Minute)
	var alicePeer simnet.NodeID
	appBob.FindInstance("chat:alice.chat", func(p simnet.NodeID, ok bool) {
		if !ok {
			log.Fatal("rendezvous lookup failed")
		}
		alicePeer = p
	})
	nw.Run(nw.Now() + time.Minute)

	appAlice.OnMessage(func(from simnet.NodeID, payload []byte) {
		fmt.Printf("   alice ← %q\n", payload)
		appAlice.SendTo(from, []byte("hi bob, no servers here"))
	})
	appBob.OnMessage(func(from simnet.NodeID, payload []byte) {
		fmt.Printf("   bob   ← %q\n", payload)
	})
	appBob.SendTo(alicePeer, []byte("hello alice, this is bob.chat"))
	nw.Run(nw.Now() + time.Minute)

	fmt.Println("\n== 4. shared state persists in the DHT, surviving a browser close")
	appAlice.StorePut("room:history", []byte("bob: hello / alice: hi"), nil)
	nw.Run(nw.Now() + time.Minute)
	appAlice.Node().Crash() // alice closes her browser
	var history []byte
	appBob.StoreGet("room:history", func(v []byte, ok bool) {
		if !ok {
			log.Fatal("history lost")
		}
		history = v
	})
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   history after alice left: %q\n", history)
}

func must(h cryptoutil.Hash, ok bool) cryptoutil.Hash {
	if !ok {
		log.Fatal("name did not resolve")
	}
	return h
}
