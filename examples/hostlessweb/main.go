// Hostlessweb: the §3.4 scenario — a website published with no server
// (ZeroNet/Beaker style). The author signs a content-addressed bundle whose
// address is her key fingerprint, visitors resolve it through the DHT and a
// tracker, seed it after visiting, and keep it alive after the author goes
// offline. A signed update propagates; a forged one is rejected; a fork is
// created and merged back (Beaker's git-for-websites flow).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
	"repro/internal/webapp"
)

func main() {
	nw := simnet.New(31)
	rng := rand.New(rand.NewSource(31))
	tracker := webapp.NewTracker(nw.AddNode())

	// Everyone — author included — is on a home broadband link.
	newPeer := func() *webapp.Peer {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		return webapp.NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
	}
	author := newPeer()
	visitors := make([]*webapp.Peer, 8)
	for i := range visitors {
		visitors[i] = newPeer()
		visitors[i].DHT().Bootstrap(author.DHT().Contact(), nil)
	}
	nw.Run(time.Minute)

	fmt.Println("== 1. author publishes a site; its address is her key fingerprint")
	owner, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}
	files := map[string][]byte{
		"index.html": []byte("<h1>no servers were harmed</h1>"),
		"app.js":     []byte("render('v1')"),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *webapp.Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   site address: %s\n", site.Short())

	fmt.Println("\n== 2. visitors fetch, verify signatures, and become seeders")
	for i, v := range visitors[:4] {
		v.Visit(site, func(got map[string][]byte, err error) {
			if err != nil {
				log.Fatalf("visitor %d: %v", i, err)
			}
		})
		nw.Run(nw.Now() + time.Minute)
	}
	fmt.Printf("   tracker now lists %d seeders\n", tracker.NumSeeders(site))

	fmt.Println("\n== 3. author ships a signed update (v2)")
	files["app.js"] = []byte("render('v2')")
	author.Publish(owner, 2, files, cryptoutil.Hash{}, nil)
	nw.Run(nw.Now() + time.Minute)
	updated := false
	visitors[0].Refresh(site, func(u bool, err error) { updated = u })
	nw.Run(nw.Now() + time.Minute)
	content, _ := visitors[0].FileContent(site, "app.js")
	fmt.Printf("   visitor refreshed=%v, app.js=%q\n", updated, content)

	fmt.Println("\n== 4. a forged update (wrong key) is rejected by every verifier")
	mallory, _ := cryptoutil.GenerateKeyPair(rng)
	forged, _ := webapp.SignManifest(mallory, 9, map[string][]byte{"index.html": []byte("pwned")}, cryptoutil.Hash{})
	forged.Site = site
	visitors[3].DHT().Put(dhtManifestKey(site), forged.Encode(), nil)
	nw.Run(nw.Now() + time.Minute)
	refreshErr := error(nil)
	visitors[0].Refresh(site, func(u bool, err error) { refreshErr = err })
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   refresh against forged manifest: %v\n", refreshErr)

	// Repair the DHT record with the legitimate v2 manifest before going on.
	if m, ok := author.Manifest(site); ok {
		author.DHT().Put(dhtManifestKey(site), m.Encode(), nil)
	}
	nw.Run(nw.Now() + time.Minute)

	fmt.Println("\n== 5. author goes offline; the site lives on its visitors")
	author.Node().Crash()
	ok := false
	visitors[5].Visit(site, func(got map[string][]byte, err error) { ok = err == nil })
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   fresh visit with author offline: success=%v\n", ok)

	fmt.Println("\n== 6. fork and merge (Beaker flow)")
	forker, _ := cryptoutil.GenerateKeyPair(rng)
	var forkSite cryptoutil.Hash
	visitors[0].Fork(site, forker, func(f map[string][]byte) {
		f["app.js"] = []byte("render('community edition')")
	}, func(m *webapp.Manifest, err error) {
		if err != nil {
			log.Fatal(err)
		}
		forkSite = m.Site
	})
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   fork published at %s (provenance → %s)\n", forkSite.Short(), site.Short())

	author.Node().Restart()
	author.Visit(forkSite, func(map[string][]byte, error) {})
	nw.Run(nw.Now() + time.Minute)
	author.Merge(owner, forkSite, func(m *webapp.Manifest, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   author merged fork into v%d of the original site\n", m.Version)
	})
	nw.Run(nw.Now() + time.Minute)

	if m, ok := author.Manifest(site); ok {
		fmt.Printf("\n== final site v%d, %d files, %d bytes, %d seeders\n",
			m.Version, len(m.Files), m.TotalSize(), tracker.NumSeeders(site))
	}
}

// dhtManifestKey mirrors webapp's internal manifest key derivation for the
// forgery demonstration.
func dhtManifestKey(site cryptoutil.Hash) cryptoutil.Hash {
	return cryptoutil.SumHashes([]byte("webapp-manifest"), site[:])
}
