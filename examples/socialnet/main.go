// Socialnet: the §3.2 group-communication scenario — a three-instance
// federation (Mastodon/Matrix style) with per-instance moderation,
// defederation, instance failure, and an end-to-end-encrypted DM over the
// double ratchet. The run demonstrates the paper's claims: federated
// instances fail independently (OStatus bottleneck), Matrix-style
// replication survives server loss, and E2E encryption hides bodies while
// metadata stays visible to the servers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/gossip"
	"repro/internal/groupcomm"
	"repro/internal/simnet"
)

func main() {
	nw := simnet.New(11)
	fmt.Println("== 1. a federation of three instances, each with its own rules")
	policies := map[string]*groupcomm.ModerationPolicy{
		"mastodon.example": {BannedWords: []string{"crypto-scam"}},
		"strict.example":   {BannedWords: []string{"crypto-scam", "rudeness"}},
		"anything.example": nil,
	}
	names := []string{"mastodon.example", "strict.example", "anything.example"}
	insts := make([]*groupcomm.FedInstance, 3)
	for i, n := range names {
		insts[i] = groupcomm.NewFedInstance(nw.AddNode(), n, policies[n])
	}
	for i, a := range insts {
		for j, b := range insts {
			if i != j {
				a.AddPeer(b.Name(), b.Node().ID())
			}
		}
	}
	users := []groupcomm.UserID{"alice", "bob", "carol"}
	clients := make([]*groupcomm.FedClient, 3)
	for i, u := range users {
		insts[i].AddUser(u)
		clients[i] = groupcomm.NewFedClient(nw.AddNode(), insts[i].Node().ID(), u, 10*time.Second)
	}
	for i := range users {
		for j := range users {
			insts[i].Follow(users[i], users[j], names[j])
		}
	}
	nw.RunAll()

	post := func(c *groupcomm.FedClient, text string) {
		ok := false
		c.Post("town", []byte(text), func(o bool) { ok = o })
		nw.RunAll()
		fmt.Printf("   %-6s posts %q → accepted=%v\n", who(c, clients, users), text, ok)
	}
	read := func(c *groupcomm.FedClient) {
		var got []groupcomm.Post
		okRead := false
		c.Read(func(ps []groupcomm.Post, ok bool) { got, okRead = ps, ok })
		nw.RunAll()
		if !okRead {
			fmt.Printf("   %-6s reads → INSTANCE UNREACHABLE\n", who(c, clients, users))
			return
		}
		fmt.Printf("   %-6s reads %d posts\n", who(c, clients, users), len(got))
	}

	post(clients[0], "hello fediverse")
	post(clients[1], "rudeness is my brand") // blocked by strict.example's own policy
	post(clients[2], "crypto-scam inside")   // accepted at home, filtered by others
	read(clients[0])
	read(clients[1])

	fmt.Println("\n== 2. strict.example defederates anything.example")
	insts[1].Defederate("anything.example")
	post(clients[2], "still here")
	read(clients[1]) // bob no longer sees carol's new posts

	fmt.Println("\n== 3. mastodon.example crashes — its user goes dark (OStatus bottleneck)")
	insts[0].Node().Crash()
	post(clients[0], "can anyone hear me?")
	read(clients[0])
	read(clients[2]) // others carry on

	fmt.Println("\n== 4. the same room on Matrix-style replicated servers survives a crash")
	repl := make([]*groupcomm.ReplServer, 3)
	rids := make([]simnet.NodeID, 3)
	for i := range repl {
		repl[i] = groupcomm.NewReplServer(nw.AddNode(), fmt.Sprintf("hs%d", i), nil,
			gossip.Config{Fanout: 2, AntiEntropyInterval: 10 * time.Second})
		rids[i] = repl[i].Node().ID()
	}
	for i, s := range repl {
		var peers []simnet.NodeID
		for j, id := range rids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	mAlice := groupcomm.NewReplClient(nw.AddNode(), rids[0], rids, "alice", 5*time.Second)
	mBob := groupcomm.NewReplClient(nw.AddNode(), rids[1], rids, "bob", 5*time.Second)
	mAlice.Post("room", []byte("replicated hello"), func(bool) {})
	nw.Run(nw.Now() + time.Minute)
	repl[1].Node().Crash() // bob's home server dies
	var bobGot []groupcomm.Post
	mBob.Fetch("room", func(ps []groupcomm.Post, ok bool) { bobGot = ps })
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   bob's home server dead; failover read finds %d post(s) ✓\n", len(bobGot))

	fmt.Println("\n== 5. encrypted DM over the double ratchet (bodies hidden, metadata not)")
	rng := rand.New(rand.NewSource(5))
	secret := cryptoutil.HKDF([]byte("alice-bob session"), nil, nil, 32)
	bobDH, err := cryptoutil.GenerateDHKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}
	aliceR, err := groupcomm.NewRatchetInitiator(rng, secret, bobDH.Public)
	if err != nil {
		log.Fatal(err)
	}
	bobR := groupcomm.NewRatchetResponder(rng, secret, bobDH)
	msg, err := aliceR.Encrypt([]byte("meet at the old server room"), []byte("alice→bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   wire bytes (server-visible): %x…\n", msg.Ciphertext[:16])
	pt, err := bobR.Decrypt(msg, []byte("alice→bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   bob decrypts: %q\n", pt)
	for _, e := range groupcomm.Exposures() {
		fmt.Printf("   metadata observers under %-22s: %d\n", e.Model, e.ObserverCount(3))
	}
}

func who(c *groupcomm.FedClient, clients []*groupcomm.FedClient, users []groupcomm.UserID) groupcomm.UserID {
	for i := range clients {
		if clients[i] == c {
			return users[i]
		}
	}
	return "?"
}
