// Quickstart: the end-to-end tour of the decentralized stack this
// repository builds — one run shows every §3 layer of the paper working
// together on a simulated network:
//
//  1. a proof-of-work blockchain comes up (3 miners),
//  2. alice registers "alice.id" with preorder/register (§3.1, Blockstack
//     style) binding her key and a zone hash,
//  3. alice stores a file on storage providers under an on-chain contract,
//     audits it with a proof-of-storage challenge, and pays for the proven
//     epoch (§3.3, Sia/Filecoin style),
//  4. bob resolves "alice.id" on his own chain replica and downloads the
//     file, verifying every byte against content addresses.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/naming"
	"repro/internal/simnet"
	"repro/internal/storage"
)

func main() {
	nw := simnet.New(7)
	rng := rand.New(rand.NewSource(7))

	alice, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== 1. boot a blockchain (3 miners, 10s blocks)\n")
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{alice.Fingerprint(): 10_000},
	}
	miners := make([]*chain.Miner, 3)
	ids := make([]simnet.NodeID, 3)
	for i := range miners {
		node := nw.AddNode()
		ids[i] = node.ID()
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), cryptoutil.SumHash([]byte{byte(i)}),
			float64(cfg.InitialDifficulty)/spacing.Seconds()/3)
	}
	for i, m := range miners {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
		m.Start()
	}
	nw.Run(nw.Now() + 30*time.Second)
	fmt.Printf("   chain height %d on every replica\n\n", miners[0].Chain().Height())

	fmt.Printf("== 2. alice registers alice.id (preorder → register)\n")
	nameCfg := naming.DefaultConfig()
	nameClient := naming.NewClient(alice, nameCfg, rng, 0)
	pre, err := nameClient.Preorder("alice.id")
	if err != nil {
		log.Fatal(err)
	}
	miners[0].SubmitTx(pre)
	nw.Run(nw.Now() + 3*spacing)

	fmt.Printf("== 3. alice stores a file with an on-chain contract\n")
	file := []byte("Re-decentralizing the Internet, one simulated packet at a time.\n")
	file = append(file, bytes.Repeat([]byte("data"), 512)...)
	client := storage.NewClient(nw.AddNode(), 30*time.Second)
	providers := make([]*storage.Provider, 4)
	refs := make([]storage.ProviderRef, 4)
	for i := range providers {
		providers[i] = storage.NewProvider(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()), 1<<30, storage.Honest)
		providers[i].SetPrice(2)
		refs[i] = providers[i].Ref()
	}
	var manifest *storage.Manifest
	var placement *storage.Placement
	client.Upload(file, 1024, refs, 3, func(m *storage.Manifest, pl *storage.Placement, err error) {
		if err != nil {
			log.Fatal(err)
		}
		manifest, placement = m, pl
	})
	nw.Run(nw.Now() + time.Minute)
	fmt.Printf("   stored %d bytes as %d chunks x%d replicas (min redundancy %d)\n",
		manifest.Size, len(manifest.Chunks), manifest.Replicas, placement.MinRedundancy(manifest))

	contract := &storage.Contract{
		Client:        alice.Fingerprint(),
		Provider:      cryptoutil.SumHash([]byte("provider-0 payout")),
		FileID:        manifest.FileID,
		SizeBytes:     int64(manifest.Size),
		PricePerEpoch: 2,
		Epochs:        3,
		ProofEvery:    6,
	}
	// Anchor the contract at nonce 1 (the preorder consumed nonce 0), then
	// advance the naming client past it and register at nonce 2.
	miners[0].SubmitTx(contract.AnchorTx(alice, 1))
	zone := cryptoutil.SumHash([]byte("zonefile: alice's pointers"))
	nameClient.SetNonce(2)
	miners[0].SubmitTx(nameClient.Register("alice.id", zone[:]))
	nw.Run(nw.Now() + 4*spacing)

	fmt.Printf("== 4. audit the providers, pay for the proven epoch\n")
	// The providers sit on lossy home-broadband links, so a challenge round
	// trip can time out without anyone cheating; re-audit once before
	// treating a failure as real.
	var report *storage.AuditReport
	for attempt := 0; attempt < 2; attempt++ {
		client.Audit(manifest, placement, 10*time.Second, func(r *storage.AuditReport) { report = r })
		nw.Run(nw.Now() + time.Minute)
		if report.Failed() == 0 {
			break
		}
	}
	fmt.Printf("   audit: %d/%d challenges passed\n", report.Passed(), len(report.Results))
	if report.Failed() == 0 {
		miners[0].SubmitTx(contract.PaymentTx(alice, 3))
		nw.Run(nw.Now() + 3*spacing)
		fmt.Printf("   provider balance on-chain: %d\n\n", miners[0].Chain().State().Balance(contract.Provider))
	}

	fmt.Printf("== 5. bob resolves alice.id on his own replica and fetches the file\n")
	idx := naming.BuildIndex(miners[1].Chain(), nameCfg) // bob's replica
	rec, ok := idx.Resolve("alice.id")
	if !ok {
		log.Fatal("alice.id did not resolve")
	}
	fmt.Printf("   alice.id → owner %s, zone hash %x…\n", rec.Owner.Short(), rec.Value[:8])
	var fetched []byte
	client.Download(manifest, placement, func(data []byte, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fetched = data
	})
	nw.Run(nw.Now() + time.Minute)
	if !bytes.Equal(fetched, file) {
		log.Fatal("downloaded file differs!")
	}
	fmt.Printf("   fetched %d bytes, content verified ✓\n\n", len(fetched))

	contracts := storage.ContractsOnChain(miners[2].Chain())
	fmt.Printf("== summary: chain height %d, %d contract(s) on chain, ledger %d bytes\n",
		miners[0].Chain().Height(), len(contracts), miners[0].Chain().TotalBytes())
	for _, m := range miners {
		m.Stop()
	}
}
