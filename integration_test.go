// Cross-subsystem integration tests: each test exercises at least two of
// the repository's packages together, mirroring how a real deployment of
// the paper's "democratized Internet" stack would compose them.
package repro

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/naming"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/webapp"
)

// minerNet builds n meshed miners sharing a config.
func minerNet(t testing.TB, nw *simnet.Network, n int, cfg chain.Config, hashrate float64) []*chain.Miner {
	t.Helper()
	miners := make([]*chain.Miner, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		ids[i] = node.ID()
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), cryptoutil.SumHash([]byte{byte(i), 0xEE}), hashrate)
	}
	for i, m := range miners {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	return miners
}

// TestNamingOverLiveChain drives the naming layer through a mined chain:
// preorder and register flow through real miners and confirm on every
// replica identically.
func TestNamingOverLiveChain(t *testing.T) {
	nw := simnet.New(101)
	rng := rand.New(rand.NewSource(101))
	kp, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 10_000},
	}
	miners := minerNet(t, nw, 3, cfg, float64(cfg.InitialDifficulty)/spacing.Seconds()/3)
	for _, m := range miners {
		m.Start()
	}
	nameCfg := naming.DefaultConfig()
	cl := naming.NewClient(kp, nameCfg, rng, 0)
	pre, err := cl.Preorder("integration.id")
	if err != nil {
		t.Fatal(err)
	}
	miners[0].SubmitTx(pre)
	// Run long enough that the preorder confirms with near certainty before
	// the register is submitted: block discovery is exponential, so a 3×
	// spacing window leaves a ~5 % chance of an empty chain.
	nw.Run(8 * spacing)
	miners[1].SubmitTx(cl.Register("integration.id", []byte("zone"))) // submit via another miner
	nw.Run(nw.Now() + 8*spacing)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	var owners []chain.Address
	for i, m := range miners {
		idx := naming.BuildIndex(m.Chain(), nameCfg)
		rec, ok := idx.Resolve("integration.id")
		if !ok {
			t.Fatalf("miner %d cannot resolve the name", i)
		}
		owners = append(owners, rec.Owner)
	}
	for _, o := range owners {
		if o != kp.Fingerprint() {
			t.Fatal("replicas disagree on the owner")
		}
	}
}

// TestStorageContractSettlementOverChain runs the full storage economy:
// upload, on-chain contract, audit, per-epoch payment mined into blocks.
func TestStorageContractSettlementOverChain(t *testing.T) {
	nw := simnet.New(103)
	rng := rand.New(rand.NewSource(103))
	kp, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 1000},
	}
	miners := minerNet(t, nw, 2, cfg, float64(cfg.InitialDifficulty)/spacing.Seconds()/2)
	for _, m := range miners {
		m.Start()
	}
	client := storage.NewClient(nw.AddNode(), 30*time.Second)
	provider := storage.NewProvider(nw.AddNode(), 1<<30, storage.Honest)
	payout := cryptoutil.SumHash([]byte("payout"))

	data := bytes.Repeat([]byte("contract data "), 100)
	var m *storage.Manifest
	var pl *storage.Placement
	client.Upload(data, 512, []storage.ProviderRef{provider.Ref()}, 1,
		func(mm *storage.Manifest, pp *storage.Placement, err error) {
			if err != nil {
				t.Fatal(err)
			}
			m, pl = mm, pp
		})
	nw.Run(nw.Now() + time.Minute)

	ct := &storage.Contract{
		Client:        kp.Fingerprint(),
		Provider:      payout,
		FileID:        m.FileID,
		SizeBytes:     int64(m.Size),
		PricePerEpoch: 7,
		Epochs:        2,
	}
	miners[0].SubmitTx(ct.AnchorTx(kp, 0))
	nw.Run(nw.Now() + 3*spacing)
	if got := storage.ContractsOnChain(miners[1].Chain()); len(got) != 1 {
		t.Fatalf("contract not replicated on chain: %d", len(got))
	}

	var report *storage.AuditReport
	client.Audit(m, pl, 10*time.Second, func(r *storage.AuditReport) { report = r })
	nw.Run(nw.Now() + time.Minute)
	if report.Failed() != 0 {
		t.Fatalf("audit failed: %d", report.Failed())
	}
	miners[0].SubmitTx(ct.PaymentTx(kp, 1))
	nw.Run(nw.Now() + 4*spacing)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()
	for i, m := range miners {
		if bal := m.Chain().State().Balance(payout); bal != 7 {
			t.Errorf("miner %d sees payout balance %d, want 7", i, bal)
		}
	}
}

// TestWebappNamingBridge registers a human-readable name on the chain whose
// value is a hostless site address; a visitor resolves name → site → files.
// This is the full Zooko-triangle stack: human-meaningful (name), secure
// (signatures end to end), decentralized (chain + DHT + seeding).
func TestWebappNamingBridge(t *testing.T) {
	nw := simnet.New(107)
	rng := rand.New(rand.NewSource(107))
	owner, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}

	// Chain side.
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{owner.Fingerprint(): 10_000},
	}
	miners := minerNet(t, nw, 2, cfg, float64(cfg.InitialDifficulty)/spacing.Seconds()/2)
	for _, m := range miners {
		m.Start()
	}

	// Web side.
	tracker := webapp.NewTracker(nw.AddNode())
	mkPeer := func() *webapp.Peer {
		node := nw.AddNode()
		return webapp.NewPeer(node, dht.NewPeer(node, dht.Key{}, dht.Config{}), tracker.Node().ID(), 10*time.Second)
	}
	authorPeer := mkPeer()
	visitorPeer := mkPeer()
	visitorPeer.DHT().Bootstrap(authorPeer.DHT().Contact(), nil)
	nw.Run(nw.Now() + time.Minute)

	var site cryptoutil.Hash
	authorPeer.Publish(owner, 1, map[string][]byte{"index.html": []byte("<p>named site</p>")}, cryptoutil.Hash{},
		func(m *webapp.Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)

	// Bind name → site address on the chain.
	nameCfg := naming.DefaultConfig()
	cl := naming.NewClient(owner, nameCfg, rng, 0)
	pre, err := cl.Preorder("my-site")
	if err != nil {
		t.Fatal(err)
	}
	miners[0].SubmitTx(pre)
	nw.Run(nw.Now() + 3*spacing)
	miners[0].SubmitTx(cl.Register("my-site", site[:]))
	nw.Run(nw.Now() + 6*spacing)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()

	// Visitor resolves the name on their replica, then visits the site.
	idx := naming.BuildIndex(miners[1].Chain(), nameCfg)
	rec, ok := idx.Resolve("my-site")
	if !ok {
		t.Fatal("name did not resolve")
	}
	if len(rec.Value) != 32 {
		t.Fatalf("name value has %d bytes, want 32", len(rec.Value))
	}
	var resolved cryptoutil.Hash
	copy(resolved[:], rec.Value)
	if resolved != site {
		t.Fatalf("resolved %s != site %s", resolved.Short(), site.Short())
	}
	var files map[string][]byte
	visitorPeer.Visit(resolved, func(f map[string][]byte, err error) {
		if err != nil {
			t.Fatalf("visit: %v", err)
		}
		files = f
	})
	nw.Run(nw.Now() + time.Minute)
	if string(files["index.html"]) != "<p>named site</p>" {
		t.Fatalf("content mismatch: %q", files["index.html"])
	}
}
