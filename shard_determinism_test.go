// Shard-determinism suite: the sharded engine's headline guarantee is that
// the merged execution is a pure function of the seed — independent of how
// many shards the nodes are partitioned across and how many workers run
// them. This suite drives the X15 dht and gossip workloads across
// Shards ∈ {1, 4, 16} × Workers ∈ {1, GOMAXPROCS} and requires the full
// merged metric snapshot (protocol counters, substrate traffic, span
// histograms) to be byte-identical everywhere. Under -short the population
// drops to the small tier, which is the variant `make race` runs with the
// race detector watching the worker pool.
package repro

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// shardDetLayouts is the determinism grid. Worker counts are deduplicated
// at runtime when GOMAXPROCS is 1.
var shardDetShards = []int{1, 4, 16}

func shardDetWorkers() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// shardDetRun executes one sharded X15 cell under a private obs collector
// and returns the byte-exact description of everything it measured.
func shardDetRun(t *testing.T, sub string, n, shards, workers int) string {
	t.Helper()
	col := obs.NewCollector()
	restore := obs.SetCollector(col)
	cell := experiments.ScaleCellRunSharded(sub, 42, n, shards, workers)
	restore()
	snap, err := json.Marshal(col.Merged())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return fmt.Sprintf("conv=%.9f msgs=%d snap=%s", cell.Converged, cell.Messages, snap)
}

func TestShardDeterminism(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 600
	}
	for _, sub := range []string{"dht", "gossip"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			var want string
			var wantAt string
			for _, shards := range shardDetShards {
				for _, workers := range shardDetWorkers() {
					got := shardDetRun(t, sub, n, shards, workers)
					at := fmt.Sprintf("shards=%d workers=%d", shards, workers)
					if want == "" {
						want, wantAt = got, at
						continue
					}
					if got != want {
						t.Fatalf("%s at N=%d: snapshot at %s differs from %s\n%s\nvs\n%s",
							sub, n, at, wantAt, got, want)
					}
				}
			}
		})
	}
}
