GO ?= go

.PHONY: ci fmt build vet test race bench

# ci is the gate run before merging: formatting, build, vet, the race
# detector over the simulator and experiment harnesses (the packages with
# parallel trial runners), and the full test suite.
ci: fmt build vet race test

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/simnet/... ./internal/experiments/...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...
