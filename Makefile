GO ?= go

.PHONY: ci fmt build vet test race bench cover fuzz

# ci is the gate run before merging: formatting, build, vet, the race
# detector over the simulator and experiment harnesses (the packages with
# parallel trial runners), the full test suite, the per-package coverage
# report with its simnet floor, and a short fuzz pass over the parser and
# erasure targets.
ci: fmt build vet race test cover fuzz

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/simnet/... ./internal/experiments/...

test:
	$(GO) test ./...

# cover emits per-package coverage and enforces the floor on the simulation
# substrate: internal/simnet and internal/simnet/fault must stay at >= 80%
# statement coverage — everything else in the repo leans on their fidelity.
cover:
	@$(GO) test -cover ./internal/... | tee /tmp/feudalism-cover.txt
	@awk '$$1 == "ok" && ($$2 == "repro/internal/simnet" || $$2 == "repro/internal/simnet/fault") { \
		seen++; for (i = 1; i <= NF; i++) if ($$i ~ /%/) { pct = $$i; gsub(/[%]/, "", pct); \
			if (pct + 0 < 80) { printf "coverage gate: %s at %s%% (floor 80%%)\n", $$2, pct; fail = 1 } } } \
		END { if (seen != 2) { print "coverage gate: simnet packages missing from report"; fail = 1 } exit fail }' /tmp/feudalism-cover.txt

# fuzz runs every fuzz target for a short burst; the checked-in corpora
# under testdata/fuzz keep regressions reproducible.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/erasure -run '^$$' -fuzz '^FuzzReedSolomonRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/erasure -run '^$$' -fuzz '^FuzzReconstructArbitraryShards$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cryptoutil -run '^$$' -fuzz '^FuzzParseHash$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cryptoutil -run '^$$' -fuzz '^FuzzParseDHPublic$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cryptoutil -run '^$$' -fuzz '^FuzzSealOpen$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cryptoutil -run '^$$' -fuzz '^FuzzMerkleProveVerify$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...
