GO ?= go

.PHONY: ci fmt build vet lint test race bench cover fuzz allocs scale

# ci is the gate run before merging: formatting, build, vet, the
# determinism lint, the race detector over every internal package, the
# full test suite, the allocation-budget gate on the scale-critical hot
# paths, the per-package coverage report with its simnet floor, and a
# short burst over every discovered fuzz target. scripts/ci.sh runs this
# and then adds the seeded bench regression gate on top.
ci: fmt build vet lint race test allocs cover fuzz

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint rejects wall-clock reads and global math/rand use outside
# internal/simnet — the two easiest ways to silently break seed
# determinism (and with it the bench gate's exact-match comparison).
lint:
	./scripts/determinism_lint.sh

# race also runs the shard-determinism suite (small tier) with the race
# detector watching the sharded engine's worker pool — the only place in
# the repo where simulation state crosses goroutines mid-run.
race:
	$(GO) test -race ./internal/...
	$(GO) test -race -short -run 'TestShardDeterminism' -count=1 .

test:
	$(GO) test ./...

# cover emits per-package coverage and enforces the floor on the simulation
# substrate, the resilience layer, the storage engine, and the workload
# engine: internal/simnet, internal/simnet/fault, internal/resil,
# internal/storage, internal/workload and internal/overload must stay at
# >= 80% statement coverage — everything else in the repo leans on their
# fidelity; resil's retry/hedge/breaker decisions feed the X16 golden,
# storage's tiering/GC decisions feed the X17 golden, workload's draws
# feed the X18 golden, and overload's admission decisions feed the X20
# golden. The gate fails loudly if a tracked package is missing from the
# report or its line
# carries no parseable percentage (e.g. the go tool's output format
# changed), rather than silently passing.
cover:
	@$(GO) test -cover ./internal/... | tee /tmp/feudalism-cover.txt
	@awk '$$1 == "ok" && ($$2 == "repro/internal/simnet" || $$2 == "repro/internal/simnet/fault" || $$2 == "repro/internal/resil" || $$2 == "repro/internal/storage" || $$2 == "repro/internal/workload" || $$2 == "repro/internal/replic" || $$2 == "repro/internal/overload") { \
		seen++; found = 0; \
		for (i = 1; i <= NF; i++) if ($$i ~ /^[0-9.]+%/) { found = 1; pct = $$i; sub(/%.*/, "", pct); \
			if (pct + 0 < 80) { printf "coverage gate: %s at %s%% (floor 80%%)\n", $$2, pct; fail = 1 } } \
		if (!found) { printf "coverage gate: no parseable coverage percentage in: %s\n", $$0; fail = 1 } } \
		END { if (seen != 7) { printf "coverage gate: expected 7 tracked packages in report, saw %d\n", seen; fail = 1 } exit fail }' /tmp/feudalism-cover.txt

# fuzz discovers every Fuzz* target in packages that keep a seed corpus
# under testdata/fuzz and runs each for a short burst — no hand-maintained
# target list to fall out of date when targets are added or renamed.
FUZZTIME ?= 10s
fuzz:
	@set -e; \
	for dir in $$($(GO) list -f '{{.Dir}}' ./...); do \
		[ -d "$$dir/testdata/fuzz" ] || continue; \
		pkg=$$($(GO) list "$$dir"); \
		targets=$$($(GO) test -list '^Fuzz' "$$pkg" | grep '^Fuzz' || true); \
		if [ -z "$$targets" ]; then \
			echo "fuzz: $$pkg has testdata/fuzz but no Fuzz targets"; exit 1; \
		fi; \
		for t in $$targets; do \
			echo "fuzz: $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test "$$pkg" -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
		done; \
	done

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# allocs enforces the allocation budgets on the hot paths the X15 scale
# sweep depends on: substrate Send must stay at 0 allocs/op, RPC round
# trips, DHT lookups and gossip rounds inside their pinned budgets.
allocs:
	$(GO) test -run 'TestAlloc' -count=1 .

# scale is the nightly-style 10k-node tier: the big scale matrix at full
# population, plus the race detector over the small tier. scripts/ci.sh
# runs it when CI_SCALE=1 so the merge gate stays fast by default.
scale:
	SCALE=big $(GO) test -run 'TestScaleBig' -count=1 -timeout 300s -v .
	$(GO) test -race -short -run 'TestScaleMatrix' -count=1 .
