// Root benchmark harness: one testing.B benchmark per paper table (E1–E3)
// and per quantitative experiment (X1–X7), as indexed in DESIGN.md and
// EXPERIMENTS.md. Each benchmark prints its regenerated table once (so
// `go test -bench . -benchtime 1x` reproduces every artifact) and then
// times repeated runs under fresh seeds.
//
// Run everything with:
//
//	go test -bench . -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/simnet"
)

// printOnce emits a table the first time a benchmark runs.
var printOnce sync.Map

func emit(b *testing.B, key string, table fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", table)
	}
}

// BenchmarkTable1Registry regenerates the paper's Table 1 (E1).
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		emit(b, "t1", t)
	}
}

// BenchmarkTable2Incentives regenerates Table 2 (E2) and executes every
// row's incentive scheme against live providers.
func BenchmarkTable2Incentives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, "t2", experiments.Table2())
		demo := experiments.RunIncentiveDemos(int64(i))
		emit(b, "t2demo", demo)
	}
}

// BenchmarkTable3Feasibility regenerates Table 3 (E3) from the §4 model.
func BenchmarkTable3Feasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, "t3", experiments.Table3())
	}
}

// BenchmarkNamingSchemes is experiment X1: registration latency and
// throughput under the centralized registrar versus the blockchain scheme.
func BenchmarkNamingSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.NamingSchemes(int64(i+1), 12)
		emit(b, "x1", t)
	}
}

// BenchmarkFiftyOnePercent is experiment X2: private-branch attack success
// versus attacker hashrate share.
func BenchmarkFiftyOnePercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.FiftyOnePercent(int64(i*100+7), 8, 15)
		emit(b, "x2", t)
	}
}

// BenchmarkCommAvailability is experiment X3: deliverability versus failed
// servers across the four group-communication models, aggregated over a
// seed batch (mean [p50 p95] per cell).
func BenchmarkCommAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CommAvailabilityMulti(simnet.Seeds(int64(i+11), 4), 0, 10, []float64{0, 0.1, 0.2, 0.3, 0.5})
		emit(b, "x3", t)
	}
}

// BenchmarkSocialP2P is experiment X4: social-P2P delivery versus friend
// degree and uptime aggregated over a seed batch, plus the
// metadata-exposure table.
func BenchmarkSocialP2P(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.SocialP2PMulti(simnet.Seeds(int64(i+13), 4), 0, 30, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95})
		emit(b, "x4", t)
		emit(b, "x4b", experiments.MetadataExposureTable(10))
	}
}

// BenchmarkStorageDurability is experiment X5: object survival under
// permanent provider failures, replication versus erasure, with and
// without repair.
func BenchmarkStorageDurability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.StorageDurabilityMulti(simnet.Seeds(int64(i+17), 3), 0, 16, 24, 6*time.Hour, 0.5)
		emit(b, "x5", t)
	}
}

// BenchmarkStorageProofs is experiment X6: the proof-mechanism versus
// provider-attack matrix.
func BenchmarkStorageProofs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.StorageAttacks(int64(i + 19))
		emit(b, "x6", t)
	}
}

// BenchmarkHostlessWeb is experiment X7: website availability and load
// distribution, client-server versus hostless.
func BenchmarkHostlessWeb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.HostlessWebMulti(simnet.Seeds(int64(i+23), 3), 0, 30)
		emit(b, "x7", t)
	}
}

// BenchmarkUsenetLoad is experiment X8: per-server cost growth under full
// flooding versus follower-scoped federation.
func BenchmarkUsenetLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.UsenetLoad(int64(i+29), []int{5, 10, 20, 40}, 20, 512)
		emit(b, "x8", t)
	}
}

// BenchmarkAbuseContainment is experiment X9: spam exposure versus
// moderation coverage under three deployment models.
func BenchmarkAbuseContainment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AbuseContainment(int64(i+31), 20, []float64{0, 0.25, 0.5, 0.75, 1})
		emit(b, "x9", t)
	}
}

// BenchmarkSelfishMining is experiment X10: selfish-mining revenue versus
// hashrate share.
func BenchmarkSelfishMining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.SelfishMining(int64(i+37), 8, 120)
		emit(b, "x10", t)
	}
}

// BenchmarkDHTQuality is experiment X11: DHT performance on device-grade
// versus datacenter infrastructure.
func BenchmarkDHTQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.DHTQualityMulti(simnet.Seeds(int64(i+41), 3), 0, 40, 40)
		emit(b, "x11", t)
	}
}

// BenchmarkWoTSybil is experiment X12: web-of-trust Sybil amplification.
func BenchmarkWoTSybil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.WoTSybil(int64(i+43), 12, []int{10, 50, 200, 1000})
		emit(b, "x12", t)
	}
}

// BenchmarkLedgerGrowth is experiment X13: endless-ledger growth versus
// the SPV and compaction mitigations.
func BenchmarkLedgerGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.LedgerGrowth(int64(i+47), 3, 10)
		emit(b, "x13", t)
	}
}

// BenchmarkFeasibilitySensitivity perturbs the §4 constants (E3
// extension).
func BenchmarkFeasibilitySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, "e3s", experiments.FeasibilitySensitivity())
	}
}

// BenchmarkRecoveryMatrix is experiment X14: the fault-battery recovery
// matrix — post-fault success and time-to-recover per subsystem × scenario.
func BenchmarkRecoveryMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RecoveryMatrix(int64(i + 53))
		emit(b, "x14", t)
	}
}

// BenchmarkScaleSweep is experiment X15 at tiny tiers: the subsystem ×
// population convergence sweep. (`feudalism experiment x15 -timing` runs
// the full 10k-node axis with wall/alloc columns.)
func BenchmarkScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ScaleSweep(int64(i+59), true)
		emit(b, "x15", t)
	}
}

// BenchmarkScaleCell10kSimnet times one raw-substrate cell at the full
// 10,000-node population — the direct measure of the Send/RPC hot path the
// allocation-budget tests pin.
func BenchmarkScaleCell10kSimnet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ScaleCellRun("simnet", int64(i+61), 10000)
	}
}
