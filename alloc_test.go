// Allocation-budget tests: pin the steady-state allocation cost of the
// three hot paths the X15 scale sweep leans on — raw message delivery,
// DHT lookups, and gossip publish rounds. The substrate Send path must be
// exactly allocation-free (events and RPC envelopes recycle through
// pools); the protocol paths carry small, pinned budgets with headroom.
// A failure here means a regression re-introduced per-message garbage that
// 10k-node populations cannot afford. `make allocs` (part of `make ci`)
// runs exactly these tests.
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/overload"
	"repro/internal/replic"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/storage/chunker"
	"repro/internal/workload"
)

// TestAllocBytesPerNode pins the per-node memory cost of constructing a
// 10k-node network with the RPC layer attached — the footprint that
// decides whether the huge tiers (100k and 1M nodes, see TestScaleHuge and
// `feudalism scale`) fit in memory. Measured ≈0.9 kB/node on both engines;
// the ceiling leaves ~60% headroom. At the ceiling, 1M nodes cost ≈1.5 GB
// before any traffic, which is the budget EXPERIMENTS.md quotes.
func TestAllocBytesPerNode(t *testing.T) {
	const n = 10_000
	const ceiling = 1536.0 // bytes per node, network + node + RPC layer
	measure := func(build func() any) float64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		keep := build()
		runtime.ReadMemStats(&after)
		perNode := float64(after.TotalAlloc-before.TotalAlloc) / n
		runtime.KeepAlive(keep)
		return perNode
	}
	engines := map[string]func() any{
		"single-heap": func() any {
			nw := simnet.New(7)
			for i := 0; i < n; i++ {
				simnet.NewRPCNode(nw.AddNode())
			}
			return nw
		},
		"sharded": func() any {
			nw := simnet.NewWithConfig(simnet.NetworkConfig{Seed: 7, Shards: 64})
			for i := 0; i < n; i++ {
				simnet.NewRPCNode(nw.AddNode())
			}
			return nw
		},
	}
	for name, build := range engines {
		if got := measure(build); got > ceiling {
			t.Errorf("%s engine: %.0f B/node at construction, ceiling %.0f", name, got, ceiling)
		}
	}
}

// TestAllocSendZero pins the raw substrate Send+deliver cycle at zero
// allocations per message in steady state.
func TestAllocSendZero(t *testing.T) {
	nw := simnet.New(7)
	src, dst := nw.AddNode(), nw.AddNode()
	dst.Handle("alloc.ping", func(simnet.Message) {})
	var payload any = struct{}{} // zero-size: boxing never allocates
	send := func() {
		src.Send(dst.ID(), "alloc.ping", payload, 16)
		nw.RunAll()
	}
	for i := 0; i < 100; i++ {
		send() // warm the event/delivery pools and the latency histogram
	}
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Errorf("Send+deliver allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestAllocRPCCall pins the full RPC round trip (call, request, reply,
// timeout timer). The envelope and pending-call pools keep it to the one
// unavoidable allocation: boxing the caller's done closure.
func TestAllocRPCCall(t *testing.T) {
	const budget = 4.0
	nw := simnet.New(8)
	a, b := simnet.NewRPCNode(nw.AddNode()), simnet.NewRPCNode(nw.AddNode())
	b.Serve("alloc.echo", func(from simnet.NodeID, req any) (any, int) { return req, 8 })
	var payload any = struct{}{}
	call := func() {
		a.Call(b.Node().ID(), "alloc.echo", payload, 16, 5*time.Second, func(any, error) {})
		nw.RunAll()
	}
	for i := 0; i < 100; i++ {
		call()
	}
	if avg := testing.AllocsPerRun(200, call); avg > budget {
		t.Errorf("RPC round trip allocates %.2f/op, budget %.0f", avg, budget)
	}
}

// TestAllocDHTLookup pins a full iterative Get (α-parallel lookup with
// per-step routing-table selection) on a settled 40-peer network. The
// budget covers the lookup state, shortlist, and the freshly allocated
// closest() results the responders ship back; the bitset/heap table work
// itself adds nothing per step.
func TestAllocDHTLookup(t *testing.T) {
	const budget = 100.0
	nw := simnet.New(9)
	const n = 40
	peers := make([]*dht.Peer, n)
	for i := range peers {
		peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, dht.Config{K: 8})
	}
	for i := 1; i < n; i++ {
		p := peers[i]
		nw.After(time.Duration(i)*50*time.Millisecond, func() {
			p.Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.RunAll()
	key := cryptoutil.SumHash([]byte("alloc-key"))
	peers[0].Put(key, []byte{1}, nil)
	nw.RunAll()
	get := func() {
		peers[n-1].Get(key, func([]byte, bool) {})
		nw.RunAll()
	}
	for i := 0; i < 50; i++ {
		get()
	}
	avg := testing.AllocsPerRun(100, get)
	t.Logf("DHT Get: %.1f allocs/op (budget %.0f)", avg, budget)
	if avg > budget {
		t.Errorf("DHT Get allocates %.1f/op, budget %.0f", avg, budget)
	}
}

// TestAllocGossipRound pins one publish round (flood to fanout peers plus
// the epidemic relay across a 30-member mesh). The budget covers item-map
// growth and per-hop deliveries; peer sampling itself is allocation-free
// since the partial Fisher-Yates reuses the member's index buffer.
func TestAllocGossipRound(t *testing.T) {
	const budget = 260.0
	nw := simnet.New(10)
	const n = 30
	members := make([]*gossip.Member, n)
	ids := make([]simnet.NodeID, n)
	for i := range members {
		members[i] = gossip.NewMember(nw.AddNode(), gossip.Config{Fanout: 3})
		ids[i] = members[i].Node().ID()
	}
	for i, m := range members {
		peers := make([]simnet.NodeID, 0, n-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	seq := 0
	publish := func() {
		seq++
		data := fmt.Sprintf("alloc-item-%d", seq)
		members[seq%n].Publish(gossip.Item{ID: cryptoutil.SumHash([]byte(data)), Data: nil, Size: 64})
		nw.RunAll()
	}
	for i := 0; i < 50; i++ {
		publish()
	}
	avg := testing.AllocsPerRun(100, publish)
	t.Logf("gossip publish round: %.1f allocs/op across %d members (budget %.0f)", avg, n, budget)
	if avg > budget {
		t.Errorf("gossip publish round allocates %.1f/op, budget %.0f", avg, budget)
	}
}

// TestAllocChunkerSplit pins content-defined chunking at zero
// allocations per Split on a reused Chunker: the fingerprint tables are
// built once in New, the window lives in the struct, and chunks are
// subslices of the input. Per-upload garbage on the chunking hot path
// would dominate large-file uploads.
func TestAllocChunkerSplit(t *testing.T) {
	ck, err := chunker.New(chunker.Defaults(1024))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	sink := 0
	split := func() {
		ck.Split(data, func(chunk []byte) { sink += len(chunk) })
	}
	split() // warm: nothing to warm, but keep parity with the other budgets
	if avg := testing.AllocsPerRun(100, split); avg != 0 {
		t.Errorf("Chunker.Split allocates %.2f/op in steady state, want 0", avg)
	}
	if sink == 0 {
		t.Fatal("split emitted nothing")
	}
}

// TestAllocTieredStore pins the localstore hot paths: a steady-state Get
// must be allocation-free in both tiers, and a dedup-hit Put (the common
// case under overlapping uploads) must not copy or allocate either.
func TestAllocTieredStore(t *testing.T) {
	ls := storage.NewLocalStore(storage.LocalStoreConfig{Capacity: 1 << 20, MemCapacity: 8 << 10})
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 13)
	}
	id := cryptoutil.SumHash(data)
	if !ls.Put(id, data) {
		t.Fatal("put refused")
	}
	get := func() {
		if _, ok := ls.Get(id); !ok {
			t.Fatal("get failed")
		}
	}
	for i := 0; i < 10; i++ {
		get()
	}
	if avg := testing.AllocsPerRun(200, get); avg != 0 {
		t.Errorf("LocalStore.Get allocates %.2f/op in steady state, want 0", avg)
	}
	dupPut := func() {
		if !ls.Put(id, data) {
			t.Fatal("dedup put refused")
		}
	}
	for i := 0; i < 10; i++ {
		dupPut()
	}
	if avg := testing.AllocsPerRun(200, dupPut); avg != 0 {
		t.Errorf("dedup-hit Put allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestAllocZipfDrawZero pins a prepared Zipf sampler's Draw at exactly
// zero allocations per request — X18 draws one per generated request, so
// a million-user schedule cannot afford per-draw garbage.
func TestAllocZipfDrawZero(t *testing.T) {
	z := workload.NewZipf(1024, 1.1)
	rng := workload.Rand(9, 0xA110C)
	sink := 0
	if avg := testing.AllocsPerRun(1000, func() { sink += z.Draw(rng) }); avg != 0 {
		t.Errorf("Zipf.Draw allocates %.2f/op, want 0", avg)
	}
	_ = sink
}

// TestAllocFlashTickZero pins the flash-crowd tick — the time-dependent
// multiplier plus the composite hot-object draw — at zero allocations
// per op across the whole spike lifecycle (pre, ramp, peak, decay).
func TestAllocFlashTickZero(t *testing.T) {
	z := workload.NewZipf(256, 1.1)
	f := workload.Flash{Object: 255, Start: time.Minute, Ramp: time.Minute, Peak: 1000, Decay: time.Minute}
	h := workload.NewHotZipf(z, f)
	rng := workload.Rand(10, 0xF1A54)
	at := time.Duration(0)
	sink := 0.0
	tick := func() {
		at += 500 * time.Millisecond // walks through every spike phase
		sink += f.Multiplier(at)
		sink += h.WeightFactor(at)
		sink += float64(h.DrawAt(at, rng))
	}
	if avg := testing.AllocsPerRun(1000, tick); avg != 0 {
		t.Errorf("flash-crowd tick allocates %.2f/op, want 0", avg)
	}
	_ = sink
}

// TestAllocDemandObserveTickZero pins the adaptive-replication demand
// tracker's hot path — one Observe per served request plus the periodic
// Tick sweep — at exactly zero allocations in steady state. Entries are
// allocated once on an object's first observation; after that, lazy decay
// is pure float math and the Tick prune compacts slices in place. A
// provider under a flash crowd calls Observe per request, so per-op
// garbage here would dominate the X19 arms' allocation profile.
func TestAllocDemandObserveTickZero(t *testing.T) {
	const regions, objects = 4, 8
	d := replic.NewDemand(30*time.Second, regions)
	objs := make([]cryptoutil.Hash, objects)
	now := time.Duration(0)
	for i := range objs {
		objs[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("alloc-obj-%d", i)))
		d.Observe(objs[i], i%regions, now) // allocate every entry up front
	}
	i := 0
	op := func() {
		now += 50 * time.Millisecond
		d.Observe(objs[i%objects], i%regions, now)
		if i%100 == 0 {
			d.Tick(now)
		}
		i++
	}
	if avg := testing.AllocsPerRun(2000, op); avg != 0 {
		t.Errorf("Demand.Observe+Tick allocates %.2f/op in steady state, want 0", avg)
	}
	if d.Len() != objects {
		t.Fatalf("tracker pruned live entries: %d objects left, want %d", d.Len(), objects)
	}
}

// TestAllocDemandAdvertSteadyState pins advert handling: after a
// neighbor's first advertisement for an object (which inserts its entry),
// every re-advertisement replaces the snapshot in place — the per-region
// buffer is reused, so the steady-state budget is exactly zero. Holders
// re-advertise every tick while hot, making this the second-hottest
// replication path after Observe.
func TestAllocDemandAdvertSteadyState(t *testing.T) {
	const regions, holders = 4, 6
	d := replic.NewDemand(30*time.Second, regions)
	obj := cryptoutil.SumHash([]byte("alloc-advert-obj"))
	breakdown := []float64{1.5, 0.5, 2.0, 0.25}
	now := time.Duration(0)
	for h := 1; h <= holders; h++ {
		d.Advert(obj, simnet.NodeID(h), 2.0, breakdown, now) // first insert allocates
	}
	i := 0
	op := func() {
		now += 100 * time.Millisecond
		d.Advert(obj, simnet.NodeID(1+i%holders), 2.0, breakdown, now)
		i++
	}
	if avg := testing.AllocsPerRun(2000, op); avg != 0 {
		t.Errorf("Demand.Advert replace path allocates %.2f/op, want 0", avg)
	}
	// The aggregation read side shares the budget: RegionRates fills a
	// caller-owned buffer.
	dst := make([]float64, regions)
	sink := 0.0
	read := func() {
		d.RegionRates(obj, now, dst)
		sink += dst[0] + d.SwarmRate(obj, now)
	}
	if avg := testing.AllocsPerRun(2000, read); avg != 0 {
		t.Errorf("RegionRates+SwarmRate allocates %.2f/op, want 0", avg)
	}
	_ = sink
}

// TestAllocAdmitZero pins the overload layer's steady-state cost at
// exactly zero allocations on top of the plain RPC path: the deferred
// ReplyToken is a value, the admission decision touches only pooled
// state, the service-done completion is a closure-free AfterCall event,
// and shed replies (not exercised here — the queue stays empty) are
// pre-boxed. Measured as a delta against an identical unprotected
// endpoint in the same network, so envelope-pool and caller-side costs
// cancel out.
func TestAllocAdmitZero(t *testing.T) {
	nw := simnet.New(9)
	a := simnet.NewRPCNode(nw.AddNode())
	plain := simnet.NewRPCNode(nw.AddNode())
	prot := simnet.NewRPCNode(nw.AddNode())
	echo := func(from simnet.NodeID, req any) (any, int) { return req, 8 }
	plain.Serve("alloc.echo", echo)
	ov := overload.New(prot, overload.Config{Enabled: true})
	ov.Protect("alloc.echo", echo)
	var payload any = struct{}{}
	done := func(any, error) {}
	callTo := func(id simnet.NodeID) func() {
		return func() {
			a.Call(id, "alloc.echo", payload, 16, 5*time.Second, done)
			nw.RunAll()
		}
	}
	cPlain, cProt := callTo(plain.Node().ID()), callTo(prot.Node().ID())
	for i := 0; i < 100; i++ {
		cPlain()
		cProt()
	}
	base := testing.AllocsPerRun(200, cPlain)
	got := testing.AllocsPerRun(200, cProt)
	if got > base {
		t.Errorf("admit/complete adds %.2f allocs/op over the plain RPC path (%.2f vs %.2f), want 0", got-base, got, base)
	}
}
